#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

#include "obs/observer.h"
#include "place/cluster.h"
#include "place/greedy.h"

namespace choreo::serve {

/// One immutable, epoch-stamped picture of the cluster the serving plane
/// answers placement queries against: the measured ClusterView plus the
/// committed residual occupancy, frozen at publish time. Snapshots are never
/// mutated after publication — the writer builds the *next* snapshot from a
/// clone and atomically swaps the pointer — so any number of readers can
/// hold and read one concurrently without synchronization beyond the
/// pointer load that fetched it.
struct ClusterSnapshot {
  std::uint64_t epoch = 0;
  place::ClusterState state;

  ClusterSnapshot(std::uint64_t epoch_, place::ClusterState state_)
      : epoch(epoch_), state(std::move(state_)) {}
};

/// A per-worker placement arena: a full clone of the current snapshot's
/// engine (view, static indexes, residual occupancy) that a query thread
/// runs its tentative Txn search on. Placement algorithms mutate the engine
/// in place (and roll back), so concurrent queries cannot share one state —
/// but they can each keep ONE clone and reuse it across queries, refreshing
/// only when the service publishes a new epoch. That turns the per-query
/// cost from an O(n^2) state rebuild into a pointer comparison in the steady
/// state. Each thread owns its Scratch exclusively; a Scratch is never
/// shared.
class Scratch {
 public:
  Scratch() = default;

  /// Epoch of the snapshot the arena currently mirrors; 0 before first use.
  std::uint64_t epoch() const { return base_ ? base_->epoch : 0; }
  /// Arena rebuilds performed (first use plus one per epoch change seen).
  std::uint64_t refreshes() const { return refreshes_; }

  /// Attaches the observability plane to this arena's queries: each worker
  /// thread hands its Scratch `obs.with_lane(worker, shard)` so per-query
  /// spans separate by lane and counter adds stay contention-free per shard.
  void set_observer(const obs::Observer& o) {
    obs_ = o;
    queries_ = o.counter("serve.queries");
    refreshes_ctr_ = o.counter("serve.scratch_refreshes");
  }

 private:
  friend class PlacementService;

  std::shared_ptr<const ClusterSnapshot> base_;
  std::optional<place::ClusterState> state_;
  std::uint64_t refreshes_ = 0;
  obs::Observer obs_;
  obs::Counter queries_;
  obs::Counter refreshes_ctr_;
};

/// The placement serving front end: answers "place this app now" queries at
/// high rate against an epoch-swapped, read-mostly cluster snapshot.
///
/// Concurrency contract:
///   * **Readers never lock.** place() loads the current snapshot pointer
///     (one atomic acquire), refreshes the caller's Scratch arena if the
///     epoch moved, and runs the engine-backed greedy on the arena. Any
///     number of threads may call place() concurrently, each with its own
///     Scratch.
///   * **Single writer.** publish_view / commit / release build the next
///     snapshot from a clone of the current one and atomically swap it in
///     with a bumped epoch. Calls to the three writer methods must be
///     serialized by the caller (the measurement/commit path — one
///     controller thread in practice); they never block readers, which keep
///     serving the previous snapshot until the swap lands.
///
/// Determinism: a query's placement is a pure function of (snapshot, app) —
/// the greedy is deterministic and the arena is an exact clone — so the
/// result is independent of thread count and interleaving *given the epoch
/// it was answered at*, which Result reports. test_serve_concurrent pins
/// exactly that: concurrent answers equal a sequential replay against the
/// recorded snapshots.
class PlacementService {
 public:
  /// Starts serving an unoccupied cluster built from `view` at epoch 1.
  explicit PlacementService(place::ClusterView view,
                            place::RateModel model = place::RateModel::Hose);
  /// Starts serving an existing state (occupancy included) at epoch 1.
  explicit PlacementService(place::ClusterState state,
                            place::RateModel model = place::RateModel::Hose);

  place::RateModel rate_model() const { return model_; }

  /// The current snapshot (lock-free). Callers may hold it as long as they
  /// like; it stays valid and immutable after newer epochs are published.
  std::shared_ptr<const ClusterSnapshot> snapshot() const {
    return snap_.load(std::memory_order_acquire);
  }
  std::uint64_t epoch() const { return snapshot()->epoch; }

  /// One answered query: the placement plus the snapshot epoch it was
  /// computed against (the replay key for determinism checks, and how a
  /// caller detects it raced a swap and may want to re-validate).
  struct Result {
    place::Placement placement;
    std::uint64_t epoch = 0;
  };

  /// Answers one placement query on the caller's arena. Throws
  /// place::PlacementError when no feasible assignment exists against the
  /// current snapshot (the arena stays valid either way). Does NOT commit —
  /// serving is read-only; the control plane decides what to commit.
  Result place(const place::Application& app, Scratch& scratch) const;

  // ---- Writer path (single-threaded by contract) ----

  /// Publishes a freshly measured view of the same fleet: next snapshot
  /// keeps the committed occupancy, rebuilds the static rate indexes.
  void publish_view(place::ClusterView view);
  /// Publishes the snapshot with `app` committed at `placement`.
  void commit(const place::Application& app, const place::Placement& placement);
  /// Publishes the snapshot with a previously committed app released.
  void release(const place::Application& app, const place::Placement& placement);

  /// Attaches the observability plane to the writer path: publish counts
  /// and the current epoch gauge. Writer-serialized like the publish
  /// methods themselves.
  void set_observer(const obs::Observer& o);

 private:
  void swap_in(place::ClusterState next);

  place::RateModel model_;
  std::atomic<std::shared_ptr<const ClusterSnapshot>> snap_;
  obs::Observer obs_;
  obs::Counter publishes_;
  obs::Gauge epoch_gauge_;
};

}  // namespace choreo::serve

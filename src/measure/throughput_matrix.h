#pragma once

#include <cstdint>
#include <vector>

#include "cloud/cloud.h"
#include "packetsim/udp_train.h"
#include "place/cluster.h"
#include "util/matrix.h"

namespace choreo::measure {

/// How Choreo measures a tenant's N VMs (§2.2, §4.1): one packet train per
/// ordered pair, scheduled in rounds so that no VM sources two trains at
/// once (they would share the hose and bias each other).
struct MeasurementPlan {
  packetsim::TrainParams train;  ///< calibrated per provider (§4.1, Fig 6)
  /// Fixed per-round cost in seconds: starting receivers, collecting
  /// timestamp logs, shipping them to the coordinator.
  double round_overhead_s = 8.0;
  /// One-off cost in seconds of setting up / tearing down the measurement
  /// servers.
  double setup_overhead_s = 30.0;
};

/// Output of one measurement phase over a fleet (§4.1).
struct MatrixResult {
  /// Estimated single-connection throughput per ordered VM pair (bits/s);
  /// diagonal entries are zero.
  DoubleMatrix rate_bps;
  /// Wall-clock the measurement would take on the real cloud — the quantity
  /// behind "less than three minutes for a ten-node topology".
  double wall_time_s = 0.0;
  std::size_t pairs_measured = 0;  ///< N * (N - 1) ordered pairs
  std::size_t rounds = 0;          ///< scheduling rounds (no VM sources twice per round)
};

/// Measures every ordered pair among `vms` with packet trains (§4.1).
/// `epoch` selects the cloud's cross-traffic snapshot, making repeated
/// measurements of the same epoch reproducible.
MatrixResult measure_rate_matrix(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms,
                                 const MeasurementPlan& plan, std::uint64_t epoch);

/// Builds the tenant's ClusterView from measurements alone: packet-train
/// rates, traceroute co-location groups (hop count 1 => same host), CPU
/// capacities from the instance type. This is exactly the information
/// Choreo's placement stage runs on.
place::ClusterView measured_cluster_view(cloud::Cloud& cloud,
                                         const std::vector<cloud::VmId>& vms,
                                         const MeasurementPlan& plan, std::uint64_t epoch);

/// Harness helper: the same view built from ground truth (noise-free rates,
/// true co-location) — what an omniscient tenant would know. Used by tests
/// and by benches that isolate placement quality from measurement error.
place::ClusterView true_cluster_view(cloud::Cloud& cloud,
                                     const std::vector<cloud::VmId>& vms,
                                     std::uint64_t epoch);

}  // namespace choreo::measure

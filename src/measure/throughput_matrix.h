#pragma once

#include <cstdint>
#include <vector>

#include "cloud/cloud.h"
#include "measure/probe_scheduler.h"
#include "measure/view_cache.h"
#include "packetsim/udp_train.h"
#include "place/cluster.h"
#include "util/matrix.h"

namespace choreo::measure {

/// How Choreo measures a tenant's N VMs (§2.2, §4.1): one packet train per
/// ordered pair, edge-colored by ProbeScheduler into conflict-free rounds
/// (no VM is source or sink of two simultaneous trains) that execute their
/// trains concurrently.
struct MeasurementPlan {
  packetsim::TrainParams train;  ///< calibrated per provider (§4.1, Fig 6)
  /// Fixed per-round cost in seconds: starting receivers, collecting
  /// timestamp logs, shipping them to the coordinator.
  double round_overhead_s = 8.0;
  /// One-off cost in seconds of setting up / tearing down the measurement
  /// servers.
  double setup_overhead_s = 30.0;
  /// Local worker threads simulating one round's concurrent trains; purely
  /// a simulation-speed knob — results are byte-identical for any value
  /// (pinned by test_determinism) and the modeled wall-clock always assumes
  /// the round's trains overlap on the real cloud.
  unsigned workers = 1;
};

/// Modeled wall-clock of a measurement phase that needed `rounds` rounds.
double measurement_wall_time_s(const MeasurementPlan& plan, std::size_t rounds);

/// Output of one measurement phase over a fleet (§4.1).
struct MatrixResult {
  /// Estimated single-connection throughput per ordered VM pair (bits/s);
  /// diagonal entries are zero.
  DoubleMatrix rate_bps;
  /// Wall-clock the measurement would take on the real cloud — the quantity
  /// behind "less than three minutes for a ten-node topology".
  double wall_time_s = 0.0;
  std::size_t pairs_measured = 0;  ///< N * (N - 1) ordered pairs
  std::size_t rounds = 0;          ///< conflict-free scheduling rounds
};

/// Output of probing an arbitrary pair subset (the incremental path).
struct PairsResult {
  std::vector<double> rate_bps;  ///< parallel to the input pairs
  double wall_time_s = 0.0;
  std::size_t rounds = 0;
};

/// Probes exactly `pairs`: schedules them into conflict-free rounds, runs
/// each round's trains concurrently against a per-round cross-traffic
/// snapshot (round r uses epoch + r), and estimates throughput per pair.
/// This is the primitive both the full matrix and incremental refreshes are
/// built on.
PairsResult measure_rate_pairs(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms,
                               const std::vector<ProbePair>& pairs,
                               const MeasurementPlan& plan, std::uint64_t epoch);

/// Measures every ordered pair among `vms` with packet trains (§4.1).
/// `epoch` selects the cloud's cross-traffic snapshot, making repeated
/// measurements of the same epoch reproducible.
MatrixResult measure_rate_matrix(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms,
                                 const MeasurementPlan& plan, std::uint64_t epoch);

/// Result of refreshing a ClusterView through a ViewCache.
struct RefreshResult {
  place::ClusterView view;
  double wall_time_s = 0.0;
  std::size_t pairs_probed = 0;  ///< strictly < n(n-1) on incremental cycles
  std::size_t rounds = 0;
  RefreshPlan plan;              ///< why each probed pair qualified
};

/// Incremental measurement cycle (§2.4 re-evaluation, arrivals): probes only
/// the pairs `cache` flags under `policy` — never measured, stale, or
/// volatile — stores the estimates back, and rebuilds the ClusterView from
/// the cache. Unchanged pairs keep their cached estimate bit-for-bit; on an
/// empty cache this is exactly a full measurement. The view's pair_epoch
/// records per-pair provenance.
RefreshResult refresh_cluster_view(cloud::Cloud& cloud,
                                   const std::vector<cloud::VmId>& vms,
                                   const MeasurementPlan& plan, std::uint64_t epoch,
                                   ViewCache& cache, const RefreshPolicy& policy);

/// The same refresh cycle with a caller-supplied probe plan — the primitive
/// behind refresh_cluster_view (which plans via the cache's fixed policy)
/// and the forecast plane's PredictivePolicy (which plans by predictability
/// score). Probes exactly `probe_plan.pairs`, stores the estimates into
/// `cache` at `epoch`, and rebuilds the ClusterView from the cache.
/// Requires cache.vm_count() == vms.size().
RefreshResult refresh_cluster_view_with_plan(cloud::Cloud& cloud,
                                             const std::vector<cloud::VmId>& vms,
                                             const MeasurementPlan& plan,
                                             std::uint64_t epoch, ViewCache& cache,
                                             RefreshPlan probe_plan);

/// Builds the tenant's ClusterView from measurements alone: packet-train
/// rates, traceroute co-location groups (hop count 1 => same host), CPU
/// capacities from the instance type. This is exactly the information
/// Choreo's placement stage runs on.
place::ClusterView measured_cluster_view(cloud::Cloud& cloud,
                                         const std::vector<cloud::VmId>& vms,
                                         const MeasurementPlan& plan, std::uint64_t epoch);

/// Harness helper: the same view built from ground truth (noise-free rates,
/// true co-location) — what an omniscient tenant would know. Used by tests
/// and by benches that isolate placement quality from measurement error.
place::ClusterView true_cluster_view(cloud::Cloud& cloud,
                                     const std::vector<cloud::VmId>& vms,
                                     std::uint64_t epoch);

}  // namespace choreo::measure

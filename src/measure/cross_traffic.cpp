#include "measure/cross_traffic.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace choreo::measure {

double cross_traffic_estimate(double probe_bps, double path_rate_bps) {
  CHOREO_REQUIRE(path_rate_bps > 0.0);
  if (probe_bps <= 0.0) return 0.0;
  const double c = path_rate_bps / probe_bps - 1.0;
  return std::max(0.0, c);
}

std::vector<double> cross_traffic_series(const std::vector<double>& probe_series_bps,
                                         double path_rate_bps) {
  std::vector<double> out;
  out.reserve(probe_series_bps.size());
  for (double s : probe_series_bps) {
    out.push_back(cross_traffic_estimate(s, path_rate_bps));
  }
  return out;
}

UnknownRateEstimate cross_traffic_unknown_rate(double one_conn_bps,
                                               double two_conn_total_bps) {
  CHOREO_REQUIRE(one_conn_bps > 0.0 && two_conn_total_bps > 0.0);
  UnknownRateEstimate out;
  const double denom = two_conn_total_bps - 2.0 * one_conn_bps;
  if (std::abs(denom) < 1e-9) {
    // Two connections doubled the aggregate: the path was unloaded and
    // unbounded in this regime; report c = 0 with the best lower bound.
    out.c = 0.0;
    out.path_rate_bps = two_conn_total_bps;
    return out;
  }
  out.c = std::max(0.0, 2.0 * (one_conn_bps - two_conn_total_bps) / denom);
  out.path_rate_bps = one_conn_bps * (out.c + 1.0);
  return out;
}

std::vector<double> measure_cross_traffic(cloud::Cloud& cloud, cloud::VmId src,
                                          cloud::VmId dst, double path_rate_bps,
                                          double duration_s, double interval_s,
                                          std::uint64_t epoch) {
  const std::vector<double> series =
      cloud.probe_series_bps(src, dst, duration_s, interval_s, epoch);
  return cross_traffic_series(series, path_rate_bps);
}

}  // namespace choreo::measure

#include "measure/view_cache.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace choreo::measure {

void ViewCache::resize(std::size_t vm_count) {
  if (vm_count == vm_count_) return;
  std::vector<PairEstimate> fresh(vm_count * vm_count);
  const std::size_t keep = std::min(vm_count, vm_count_);
  for (std::size_t i = 0; i < keep; ++i) {
    for (std::size_t j = 0; j < keep; ++j) {
      fresh[i * vm_count + j] = entries_[i * vm_count_ + j];
    }
  }
  vm_count_ = vm_count;
  entries_ = std::move(fresh);
}

const PairEstimate& ViewCache::at(std::size_t src, std::size_t dst) const {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_);
  return entries_[index(src, dst)];
}

void ViewCache::store(std::size_t src, std::size_t dst, double rate_bps,
                      std::uint64_t epoch) {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_ && src != dst);
  CHOREO_REQUIRE(rate_bps >= 0.0);
  PairEstimate& e = entries_[index(src, dst)];
  e.prev_rate_bps = e.valid() ? e.rate_bps : rate_bps;
  e.rate_bps = rate_bps;
  e.epoch = epoch;
  ++e.measurements;
}

void ViewCache::invalidate(std::size_t src, std::size_t dst) {
  CHOREO_REQUIRE(src < vm_count_ && dst < vm_count_);
  entries_[index(src, dst)] = PairEstimate{};
}

bool ViewCache::is_volatile(std::size_t src, std::size_t dst, double threshold) const {
  const PairEstimate& e = at(src, dst);
  // One measurement says nothing about stability yet.
  if (e.measurements < 2) return false;
  const double base = std::max(e.prev_rate_bps, 1.0);
  return std::abs(e.rate_bps - e.prev_rate_bps) / base > threshold;
}

RefreshPlan ViewCache::plan_refresh(std::uint64_t current_epoch,
                                    const RefreshPolicy& policy) const {
  CHOREO_REQUIRE(vm_count_ >= 2);
  RefreshPlan plan;
  for (std::size_t i = 0; i < vm_count_; ++i) {
    for (std::size_t j = 0; j < vm_count_; ++j) {
      if (i == j) continue;
      const PairEstimate& e = entries_[index(i, j)];
      if (!e.valid()) {
        ++plan.never_measured;
      } else if (e.epoch + policy.max_age_epochs < current_epoch) {
        ++plan.stale;
      } else if (policy.refresh_volatile &&
                 is_volatile(i, j, policy.volatility_threshold)) {
        ++plan.volatile_pairs;
      } else {
        continue;
      }
      plan.pairs.push_back({i, j});
    }
  }
  return plan;
}

DoubleMatrix ViewCache::rates() const {
  DoubleMatrix out(vm_count_, vm_count_, 0.0);
  for (std::size_t i = 0; i < vm_count_; ++i) {
    for (std::size_t j = 0; j < vm_count_; ++j) {
      if (i != j) out(i, j) = entries_[index(i, j)].rate_bps;
    }
  }
  return out;
}

Matrix<std::uint64_t> ViewCache::epochs() const {
  Matrix<std::uint64_t> out(vm_count_, vm_count_, 0);
  for (std::size_t i = 0; i < vm_count_; ++i) {
    for (std::size_t j = 0; j < vm_count_; ++j) {
      if (i != j) out(i, j) = entries_[index(i, j)].epoch;
    }
  }
  return out;
}

std::size_t ViewCache::measured_pairs() const {
  std::size_t n = 0;
  for (const PairEstimate& e : entries_) {
    if (e.valid()) ++n;
  }
  return n;
}

}  // namespace choreo::measure

#pragma once

#include <cstdint>
#include <vector>

#include "cloud/cloud.h"

namespace choreo::measure {

/// Result of one §3.3.2 concurrency probe: run netperf on A->B and C->D
/// simultaneously and compare against their solo throughputs.
struct InterferenceProbe {
  cloud::VmId a = 0, b = 0, c = 0, d = 0;
  double solo_ab_bps = 0.0;
  double solo_cd_bps = 0.0;
  double joint_ab_bps = 0.0;
  double joint_cd_bps = 0.0;
  bool interferes = false;  ///< joint_ab dropped significantly vs solo_ab
};

/// Runs one interference probe. `drop_threshold` is the relative throughput
/// decrease that counts as interference (the paper looks for a significant
/// drop; 50% sharing shows as ~0.5).
InterferenceProbe probe_interference(cloud::Cloud& cloud, cloud::VmId a, cloud::VmId b,
                                     cloud::VmId c, cloud::VmId d, double duration_s,
                                     double drop_threshold, std::uint64_t epoch);

/// §3.3.2's interference-prediction rules, given the topological relations
/// Choreo infers from traceroute. Returns whether connections A->B and C->D
/// are predicted to contend.
struct PathRelations {
  bool same_source = false;         ///< A == C
  bool sources_same_rack = false;   ///< A and C share a rack
  bool b_on_that_rack = false;      ///< B is on A/C's rack
  bool d_on_that_rack = false;      ///< D is on A/C's rack
  bool sources_same_subtree = false;  ///< A and C in one aggregation subtree
  bool b_in_that_subtree = false;
  bool d_in_that_subtree = false;
};

enum class BottleneckSite { SourceHose, TorUplink, AggToCore };

bool predict_interference(const PathRelations& rel, BottleneckSite site);

/// The §4.3 experiment: many same-source pairs and many 4-distinct-endpoint
/// pairs, with the verdicts the paper reports (EC2/Rackspace: same-source
/// always interferes, disjoint endpoints never => bottleneck is the first
/// hop => hose model).
struct BottleneckReport {
  std::size_t same_source_probes = 0;
  std::size_t same_source_interfering = 0;
  std::size_t disjoint_probes = 0;
  std::size_t disjoint_interfering = 0;
  /// True when every same-source probe interfered and no disjoint one did.
  bool source_bottleneck = false;
  /// True when, additionally, the sum of concurrent same-source connections
  /// stayed (within tolerance) equal to the solo throughput — the signature
  /// of hose-model rate limiting.
  bool hose_model = false;
  double mean_same_source_sum_ratio = 0.0;  ///< (joint_ab+joint_cd)/solo_ab
};

BottleneckReport locate_bottlenecks(cloud::Cloud& cloud,
                                    const std::vector<cloud::VmId>& vms,
                                    std::size_t probes_per_kind, double duration_s,
                                    std::uint64_t seed, std::uint64_t epoch);

/// Clusters VMs by rack from traceroute alone (§3.3.1-2): hop count 1 means
/// same physical machine, 2 means same rack. Returns one group id per VM
/// (same id = same rack). "Because we can cluster VMs by rack, in many
/// cases, Choreo can generalize one measurement to the entire rack."
std::vector<int> cluster_by_rack(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms);

/// Predicts, for every ordered pair of paths (a->b, c->d) over `vms`,
/// whether their connections would interfere — using only the rack clusters
/// and the detected bottleneck site, i.e. without measuring every pair of
/// paths (the §3.3.2 generalization). Entry [p][q] corresponds to paths
/// enumerated in row-major (src, dst) order with src != dst.
struct InterferencePrediction {
  std::vector<std::pair<cloud::VmId, cloud::VmId>> paths;
  std::vector<std::vector<bool>> interferes;
};
InterferencePrediction predict_all_interference(cloud::Cloud& cloud,
                                                const std::vector<cloud::VmId>& vms,
                                                BottleneckSite site);

}  // namespace choreo::measure

#pragma once

#include <cstdint>
#include <vector>

#include "cloud/cloud.h"

namespace choreo::measure {

/// §3.2: given a path of maximum rate c1 on which our bulk connection
/// obtains c2, the load on the bottleneck is equivalent to c = c1/c2 - 1
/// concurrent backlogged TCP connections. Applied per 10 ms sample.
std::vector<double> cross_traffic_series(const std::vector<double>& probe_series_bps,
                                         double path_rate_bps);

/// Integer-rounded version of a single sample (what Fig 4 plots).
double cross_traffic_estimate(double probe_bps, double path_rate_bps);

/// §3.2's fallback when the maximum path rate is unknown: send one
/// connection (rate r1), then two in parallel (combined rate s2); the shift
/// reveals c. Algebra: r1 = C/(c+1), s2 = 2C/(c+2)  =>
/// c = 2*(r1 - s2) / (s2 - 2*r1)  (and the path rate C follows).
struct UnknownRateEstimate {
  double c = 0.0;
  double path_rate_bps = 0.0;
};
UnknownRateEstimate cross_traffic_unknown_rate(double one_conn_bps, double two_conn_total_bps);

/// Runs the full §3.2 procedure on a cloud: a 10-second bulk connection
/// sampled every `interval_s`, converted to a cross-traffic series.
std::vector<double> measure_cross_traffic(cloud::Cloud& cloud, cloud::VmId src,
                                          cloud::VmId dst, double path_rate_bps,
                                          double duration_s, double interval_s,
                                          std::uint64_t epoch);

}  // namespace choreo::measure

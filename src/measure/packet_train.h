#pragma once

#include <vector>

#include "packetsim/sink.h"
#include "packetsim/udp_train.h"

namespace choreo::measure {

/// Result of estimating path throughput from one received packet train.
struct TrainEstimate {
  double throughput_bps = 0.0;   ///< the §3.1 combined estimator
  double rate_term_bps = 0.0;    ///< P*(N-1)*(1-l)/T term
  double mathis_term_bps = 0.0;  ///< MSS*C/(RTT*sqrt(l)) term (inf when l=0)
  double loss_rate = 0.0;        ///< l, from sequence numbers
  std::size_t packets_received = 0;
  std::size_t bursts_used = 0;   ///< bursts with at least two packets
};

/// Implements the §3.1 estimator over the receiver's SO_TIMESTAMPNS log:
///
///   * per burst i: n_i received packets, t_i = time from first to last
///     packet of the burst; if head/tail packets were lost, t_i is scaled to
///     what it "should have been" using the average per-packet time;
///   * rate term: 8 * P * sum(n_i) / sum(t_i);
///   * loss term: MSS * C / (RTT * sqrt(l)), C = sqrt(3/2) [Mathis et al.];
///   * estimate: min of the two (the Mathis term is an upper bound that is
///     only informative when loss is non-negligible).
TrainEstimate estimate_train_throughput(
    const std::vector<packetsim::RecordingSink::Record>& records,
    const packetsim::TrainParams& params, double rtt_s);

/// Wall-clock duration of sending one train (emission time, ignoring path
/// latency): used for measurement-overhead accounting (§4.1 "an individual
/// train takes less than one second to send").
double train_duration_s(const packetsim::TrainParams& params);

}  // namespace choreo::measure

#pragma once

#include <cstdint>
#include <vector>

#include "cloud/cloud.h"
#include "packetsim/udp_train.h"

namespace choreo::measure {

/// One cell of the §4.1 calibration sweep (Fig 6): average relative error of
/// packet-train estimates against 10-second netperf "ground truth" over a
/// set of paths, for one (bursts, burst_length) configuration.
struct CalibrationPoint {
  std::uint32_t bursts = 0;
  std::uint32_t burst_length = 0;
  double mean_rel_error = 0.0;
  double median_rel_error = 0.0;
  double train_duration_s = 0.0;
};

struct CalibrationConfig {
  std::vector<std::uint32_t> burst_counts{10, 20, 50};
  std::vector<std::uint32_t> burst_lengths{50, 200, 500, 1000, 2000, 4000};
  packetsim::TrainParams base;   ///< packet size, gap, line rate
  double netperf_duration_s = 10.0;
  std::size_t max_paths = 30;    ///< paths sampled per configuration
};

/// Runs the calibration sweep on `cloud` over ordered pairs drawn from
/// `vms`. "Before using a cloud network, a tenant should calibrate their
/// packet train parameters" — this is that procedure as a library call.
std::vector<CalibrationPoint> calibrate_trains(cloud::Cloud& cloud,
                                               const std::vector<cloud::VmId>& vms,
                                               const CalibrationConfig& config,
                                               std::uint64_t epoch);

/// Picks the cheapest configuration whose mean error is within
/// `target_error` (e.g. 0.10 for 10%); falls back to the most accurate one.
packetsim::TrainParams recommend_train(const std::vector<CalibrationPoint>& points,
                                       const packetsim::TrainParams& base,
                                       double target_error);

}  // namespace choreo::measure

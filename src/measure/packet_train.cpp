#include "measure/packet_train.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/require.h"

namespace choreo::measure {

double train_duration_s(const packetsim::TrainParams& p) {
  const double wire = p.packet_bytes + p.header_bytes;
  const double burst_s = static_cast<double>(p.burst_length) * wire * 8.0 / p.line_rate_bps;
  return p.bursts * burst_s + (p.bursts - 1) * p.inter_burst_gap_s;
}

TrainEstimate estimate_train_throughput(
    const std::vector<packetsim::RecordingSink::Record>& records,
    const packetsim::TrainParams& params, double rtt_s) {
  CHOREO_REQUIRE(rtt_s > 0.0);
  TrainEstimate out;
  out.packets_received = records.size();
  if (records.empty()) return out;

  const std::uint32_t B = params.burst_length;
  const double P = params.packet_bytes;

  // Group by burst (records are in arrival order; bursts may interleave only
  // pathologically, so a simple pass per burst index is safe).
  struct BurstAgg {
    std::size_t count = 0;
    double t_first = 0.0, t_last = 0.0;
    std::uint64_t seq_first = 0, seq_last = 0;
  };
  std::vector<BurstAgg> bursts(params.bursts);
  for (const auto& r : records) {
    CHOREO_REQUIRE(r.burst < params.bursts);
    BurstAgg& b = bursts[r.burst];
    if (b.count == 0) {
      b.t_first = r.time;
      b.seq_first = r.seq;
    }
    b.t_last = r.time;
    b.seq_last = r.seq;
    ++b.count;
  }

  double sum_n = 0.0;
  double sum_t = 0.0;
  for (std::uint32_t k = 0; k < params.bursts; ++k) {
    const BurstAgg& b = bursts[k];
    if (b.count < 2) continue;  // nothing to time
    ++out.bursts_used;
    double t = b.t_last - b.t_first;
    // Head/tail loss adjustment (§3.1): scale the observed span to the full
    // burst using the average per-packet time over the span we did see.
    const std::uint64_t burst_start = static_cast<std::uint64_t>(k) * B;
    const std::uint64_t span = b.seq_last - b.seq_first;  // packets-1 across span
    if (span > 0 && (b.seq_first != burst_start || b.seq_last != burst_start + B - 1)) {
      t = t * static_cast<double>(B - 1) / static_cast<double>(span);
    }
    sum_n += static_cast<double>(b.count);
    sum_t += t;
  }
  if (sum_t <= 0.0) return out;

  out.loss_rate =
      1.0 - static_cast<double>(records.size()) /
                (static_cast<double>(params.bursts) * static_cast<double>(B));
  out.loss_rate = std::max(0.0, out.loss_rate);

  // Rate term: the estimator in §3.1 is P*sum(n_i)/sum(t_i), equivalently
  // P*(N-1)*(1-l)/T over the whole train.
  out.rate_term_bps = 8.0 * P * sum_n / sum_t;

  if (out.loss_rate > 0.0) {
    constexpr double kMathisC = 1.224744871391589;  // sqrt(3/2)
    out.mathis_term_bps = 8.0 * P * kMathisC / (rtt_s * std::sqrt(out.loss_rate));
  } else {
    out.mathis_term_bps = std::numeric_limits<double>::infinity();
  }
  out.throughput_bps = std::min(out.rate_term_bps, out.mathis_term_bps);
  return out;
}

}  // namespace choreo::measure

#include "measure/calibration.h"

#include <algorithm>

#include "measure/packet_train.h"
#include "util/require.h"
#include "util/stats.h"

namespace choreo::measure {

std::vector<CalibrationPoint> calibrate_trains(cloud::Cloud& cloud,
                                               const std::vector<cloud::VmId>& vms,
                                               const CalibrationConfig& config,
                                               std::uint64_t epoch) {
  CHOREO_REQUIRE(vms.size() >= 2);
  CHOREO_REQUIRE(!config.burst_counts.empty() && !config.burst_lengths.empty());

  // Enumerate ordered pairs round-robin style and truncate to max_paths.
  std::vector<std::pair<cloud::VmId, cloud::VmId>> paths;
  for (std::size_t r = 1; r < vms.size() && paths.size() < config.max_paths; ++r) {
    for (std::size_t i = 0; i < vms.size() && paths.size() < config.max_paths; ++i) {
      const std::size_t j = (i + r) % vms.size();
      if (cloud.vm_host(vms[i]) == cloud.vm_host(vms[j])) continue;  // measure fabric paths
      paths.emplace_back(vms[i], vms[j]);
    }
  }
  CHOREO_REQUIRE(!paths.empty());

  std::vector<CalibrationPoint> out;
  std::uint64_t sub = 0;
  for (std::uint32_t bursts : config.burst_counts) {
    for (std::uint32_t blen : config.burst_lengths) {
      packetsim::TrainParams params = config.base;
      params.bursts = bursts;
      params.burst_length = blen;

      std::vector<double> errors;
      errors.reserve(paths.size());
      for (const auto& [src, dst] : paths) {
        ++sub;
        const double truth =
            cloud.netperf_bps(src, dst, config.netperf_duration_s, epoch + sub);
        const auto records = cloud.run_train(src, dst, params, epoch + sub);
        const TrainEstimate est =
            estimate_train_throughput(records, params, cloud.ping_rtt_s(src, dst));
        if (truth > 0.0 && est.throughput_bps > 0.0) {
          errors.push_back(relative_error(est.throughput_bps, truth));
        }
      }
      CalibrationPoint point;
      point.bursts = bursts;
      point.burst_length = blen;
      point.train_duration_s = train_duration_s(params);
      if (!errors.empty()) {
        point.mean_rel_error = mean(errors);
        point.median_rel_error = median(errors);
      }
      out.push_back(point);
    }
  }
  return out;
}

packetsim::TrainParams recommend_train(const std::vector<CalibrationPoint>& points,
                                       const packetsim::TrainParams& base,
                                       double target_error) {
  CHOREO_REQUIRE(!points.empty());
  CHOREO_REQUIRE(target_error > 0.0);
  const CalibrationPoint* chosen = nullptr;
  for (const CalibrationPoint& p : points) {
    if (p.mean_rel_error <= target_error) {
      if (chosen == nullptr || p.train_duration_s < chosen->train_duration_s) chosen = &p;
    }
  }
  if (chosen == nullptr) {
    for (const CalibrationPoint& p : points) {
      if (chosen == nullptr || p.mean_rel_error < chosen->mean_rel_error) chosen = &p;
    }
  }
  packetsim::TrainParams params = base;
  params.bursts = chosen->bursts;
  params.burst_length = chosen->burst_length;
  return params;
}

}  // namespace choreo::measure

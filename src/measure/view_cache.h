#pragma once

#include <cstdint>
#include <vector>

#include "measure/probe_scheduler.h"
#include "util/matrix.h"

namespace choreo::measure {

/// One cached pair estimate with its provenance: when it was measured and
/// what the previous estimate was (the §2.1 "previous hour" predictability
/// signal, applied at the pair level).
struct PairEstimate {
  double rate_bps = 0.0;
  double prev_rate_bps = 0.0;    ///< estimate before the latest refresh
  std::uint64_t epoch = 0;       ///< epoch of the latest refresh
  std::uint64_t measurements = 0;

  bool valid() const { return measurements > 0; }
};

/// Staleness rules for incremental refresh: which cached pairs an epoch's
/// measurement cycle must re-probe.
struct RefreshPolicy {
  /// A pair is stale once its estimate is older than this many epochs.
  std::uint64_t max_age_epochs = 8;
  /// A pair is volatile when its last two estimates disagree by more than
  /// this relative factor — the pair-level analogue of a low §2.1
  /// predictability score. Volatile pairs are re-probed every cycle.
  double volatility_threshold = 0.5;
  bool refresh_volatile = true;
};

/// What an incremental refresh must probe, and why each pair qualified.
struct RefreshPlan {
  std::vector<ProbePair> pairs;
  std::size_t never_measured = 0;  ///< includes pairs of newly allocated VMs
  std::size_t stale = 0;
  std::size_t volatile_pairs = 0;
};

/// Epoch-stamped cache of the pairwise rate estimates behind a
/// place::ClusterView. The measurement plane stores every train estimate
/// here; refresh planning walks the cache instead of re-probing the whole
/// n(n-1) matrix, which is what turns §2.4 re-evaluation from a full
/// re-measurement into an incremental one.
class ViewCache {
 public:
  ViewCache() = default;
  explicit ViewCache(std::size_t vm_count) { resize(vm_count); }

  /// Grows (or shrinks) the fleet, preserving estimates for surviving VM
  /// indices. Pairs touching newly allocated VMs start never-measured, so
  /// the next refresh plan probes exactly them.
  void resize(std::size_t vm_count);

  std::size_t vm_count() const { return vm_count_; }

  const PairEstimate& at(std::size_t src, std::size_t dst) const;

  /// Records one probe result for (src, dst) at `epoch`.
  void store(std::size_t src, std::size_t dst, double rate_bps, std::uint64_t epoch);

  /// Forgets one pair (it becomes never-measured).
  void invalidate(std::size_t src, std::size_t dst);

  /// True when the pair's last two estimates disagree by more than
  /// `threshold` relative to the earlier one.
  bool is_volatile(std::size_t src, std::size_t dst, double threshold) const;

  /// Plans an incremental refresh at `current_epoch`: every never-measured
  /// pair, every pair older than policy.max_age_epochs, and (optionally)
  /// every volatile pair. On a fresh cache this degenerates to the full
  /// matrix, so first measurement and refresh share one code path.
  RefreshPlan plan_refresh(std::uint64_t current_epoch, const RefreshPolicy& policy) const;

  /// Current rate matrix (zero diagonal; never-measured pairs are zero).
  DoubleMatrix rates() const;

  /// Epoch stamp per pair (zero diagonal / never-measured) — exported into
  /// place::ClusterView::pair_epoch so placers can see what they trust.
  Matrix<std::uint64_t> epochs() const;

  /// Number of pairs with at least one measurement.
  std::size_t measured_pairs() const;

 private:
  std::size_t index(std::size_t src, std::size_t dst) const {
    return src * vm_count_ + dst;
  }

  std::size_t vm_count_ = 0;
  std::vector<PairEstimate> entries_;  ///< row-major vm_count x vm_count
};

}  // namespace choreo::measure

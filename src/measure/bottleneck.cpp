#include "measure/bottleneck.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"
#include "util/rng.h"

namespace choreo::measure {

InterferenceProbe probe_interference(cloud::Cloud& cloud, cloud::VmId a, cloud::VmId b,
                                     cloud::VmId c, cloud::VmId d, double duration_s,
                                     double drop_threshold, std::uint64_t epoch) {
  CHOREO_REQUIRE(duration_s > 0.0);
  CHOREO_REQUIRE(drop_threshold > 0.0 && drop_threshold < 1.0);
  InterferenceProbe probe;
  probe.a = a;
  probe.b = b;
  probe.c = c;
  probe.d = d;
  probe.solo_ab_bps = cloud.netperf_bps(a, b, duration_s, epoch);
  probe.solo_cd_bps = cloud.netperf_bps(c, d, duration_s, epoch);
  const std::vector<double> joint =
      cloud.netperf_concurrent_bps({{a, b}, {c, d}}, duration_s, epoch);
  probe.joint_ab_bps = joint[0];
  probe.joint_cd_bps = joint[1];
  probe.interferes =
      probe.joint_ab_bps < probe.solo_ab_bps * (1.0 - drop_threshold) ||
      probe.joint_cd_bps < probe.solo_cd_bps * (1.0 - drop_threshold);
  return probe;
}

bool predict_interference(const PathRelations& rel, BottleneckSite site) {
  switch (site) {
    case BottleneckSite::SourceHose:
      // Hose enforcement: only connections out of the very same VM contend.
      return rel.same_source;
    case BottleneckSite::TorUplink:
      // Rule 1: (a) same source, or (b) sources share the rack and both
      // destinations leave it.
      if (rel.same_source) return true;
      return rel.sources_same_rack && !rel.b_on_that_rack && !rel.d_on_that_rack;
    case BottleneckSite::AggToCore:
      // Rule 2: both connections originate in one subtree and must leave it
      // (they then *may* contend, subject to ECMP spreading — we predict the
      // conservative "potentially interfere").
      if (rel.same_source) return true;
      return rel.sources_same_subtree && !rel.b_in_that_subtree && !rel.d_in_that_subtree;
  }
  CHOREO_ASSERT(false);
  return false;
}

BottleneckReport locate_bottlenecks(cloud::Cloud& cloud,
                                    const std::vector<cloud::VmId>& vms,
                                    std::size_t probes_per_kind, double duration_s,
                                    std::uint64_t seed, std::uint64_t epoch) {
  CHOREO_REQUIRE(vms.size() >= 4);
  CHOREO_REQUIRE(probes_per_kind >= 1);
  Rng rng(seed);
  BottleneckReport report;
  double sum_ratio = 0.0;

  const auto pick = [&](std::size_t exclude_count, const cloud::VmId* exclude) {
    for (std::size_t attempt = 0; attempt < 10000; ++attempt) {
      const cloud::VmId v = vms[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(vms.size()) - 1))];
      bool clash = false;
      for (std::size_t k = 0; k < exclude_count; ++k) {
        if (exclude[k] == v || cloud.vm_host(exclude[k]) == cloud.vm_host(v)) clash = true;
      }
      if (!clash) return v;
    }
    throw PreconditionError("locate_bottlenecks: needs VMs on >= 4 distinct hosts");
  };

  // Same-source pairs: A->B and A->D.
  for (std::size_t p = 0; p < probes_per_kind; ++p) {
    const cloud::VmId a = vms[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(vms.size()) - 1))];
    cloud::VmId chosen[3] = {a, a, a};
    const cloud::VmId b = pick(1, chosen);
    chosen[1] = b;
    const cloud::VmId d = pick(2, chosen);
    const InterferenceProbe probe =
        probe_interference(cloud, a, b, a, d, duration_s, 0.25, epoch + p);
    ++report.same_source_probes;
    if (probe.interferes) ++report.same_source_interfering;
    sum_ratio += (probe.joint_ab_bps + probe.joint_cd_bps) /
                 std::max(probe.solo_ab_bps, 1.0);
  }
  report.mean_same_source_sum_ratio =
      sum_ratio / static_cast<double>(report.same_source_probes);

  // Four distinct endpoints on distinct hosts.
  for (std::size_t p = 0; p < probes_per_kind; ++p) {
    cloud::VmId chosen[4];
    chosen[0] = vms[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(vms.size()) - 1))];
    chosen[1] = pick(1, chosen);
    chosen[2] = pick(2, chosen);
    chosen[3] = pick(3, chosen);
    const InterferenceProbe probe = probe_interference(
        cloud, chosen[0], chosen[1], chosen[2], chosen[3], duration_s, 0.25, epoch + 1000 + p);
    ++report.disjoint_probes;
    if (probe.interferes) ++report.disjoint_interfering;
  }

  report.source_bottleneck =
      report.same_source_interfering == report.same_source_probes &&
      report.disjoint_interfering == 0;
  // Hose signature: concurrent same-source connections sum to the solo rate.
  report.hose_model = report.source_bottleneck &&
                      std::abs(report.mean_same_source_sum_ratio - 1.0) < 0.1;
  return report;
}

std::vector<int> cluster_by_rack(cloud::Cloud& cloud,
                                 const std::vector<cloud::VmId>& vms) {
  CHOREO_REQUIRE(!vms.empty());
  // Union-find over "hop count <= 2" (same machine or same rack).
  std::vector<int> group(vms.size(), -1);
  int next = 0;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    if (group[i] < 0) group[i] = next++;
    for (std::size_t j = i + 1; j < vms.size(); ++j) {
      if (cloud.traceroute_hops(vms[i], vms[j]) <= 2) {
        if (group[j] < 0) {
          group[j] = group[i];
        } else if (group[j] != group[i]) {
          // Merge the later group into the earlier one.
          const int from = group[j], to = group[i];
          for (int& g : group) {
            if (g == from) g = to;
          }
        }
      }
    }
  }
  return group;
}

InterferencePrediction predict_all_interference(cloud::Cloud& cloud,
                                                const std::vector<cloud::VmId>& vms,
                                                BottleneckSite site) {
  CHOREO_REQUIRE(vms.size() >= 2);
  InterferencePrediction out;
  const std::vector<int> rack = cluster_by_rack(cloud, vms);
  std::vector<std::pair<std::size_t, std::size_t>> idx;
  for (std::size_t i = 0; i < vms.size(); ++i) {
    for (std::size_t j = 0; j < vms.size(); ++j) {
      if (i == j) continue;
      out.paths.emplace_back(vms[i], vms[j]);
      idx.emplace_back(i, j);
    }
  }
  out.interferes.assign(out.paths.size(), std::vector<bool>(out.paths.size(), false));
  for (std::size_t p = 0; p < idx.size(); ++p) {
    for (std::size_t q = 0; q < idx.size(); ++q) {
      if (p == q) continue;
      const auto [a, b] = idx[p];
      const auto [c, d] = idx[q];
      PathRelations rel;
      rel.same_source = vms[a] == vms[c];
      rel.sources_same_rack = rack[a] == rack[c];
      rel.b_on_that_rack = rack[b] == rack[a];
      rel.d_on_that_rack = rack[d] == rack[a];
      // With traceroute-only knowledge, "subtree" is approximated by rack
      // at one level coarser; we reuse rack clusters (conservative).
      rel.sources_same_subtree = rel.sources_same_rack;
      rel.b_in_that_subtree = rel.b_on_that_rack;
      rel.d_in_that_subtree = rel.d_on_that_rack;
      out.interferes[p][q] = predict_interference(rel, site);
    }
  }
  return out;
}

}  // namespace choreo::measure

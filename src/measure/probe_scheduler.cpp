#include "measure/probe_scheduler.h"

#include <algorithm>

#include "util/require.h"

namespace choreo::measure {

std::size_t ProbeSchedule::pair_count() const {
  std::size_t n = 0;
  for (const auto& round : rounds) n += round.size();
  return n;
}

void ProbeSchedule::validate(std::size_t vm_count) const {
  std::vector<char> seen(vm_count * vm_count, 0);
  std::vector<char> src_busy(vm_count), dst_busy(vm_count);
  for (const auto& round : rounds) {
    CHOREO_REQUIRE_MSG(!round.empty(), "schedule contains an empty round");
    std::fill(src_busy.begin(), src_busy.end(), 0);
    std::fill(dst_busy.begin(), dst_busy.end(), 0);
    for (const ProbePair& p : round) {
      CHOREO_REQUIRE(p.src < vm_count && p.dst < vm_count && p.src != p.dst);
      CHOREO_REQUIRE_MSG(!src_busy[p.src], "VM sources two trains in one round");
      CHOREO_REQUIRE_MSG(!dst_busy[p.dst], "VM sinks two trains in one round");
      src_busy[p.src] = dst_busy[p.dst] = 1;
      char& mark = seen[p.src * vm_count + p.dst];
      CHOREO_REQUIRE_MSG(!mark, "pair scheduled twice");
      mark = 1;
    }
  }
}

std::vector<ProbePair> all_ordered_pairs(std::size_t vm_count) {
  std::vector<ProbePair> pairs;
  pairs.reserve(vm_count * (vm_count - 1));
  for (std::size_t i = 0; i < vm_count; ++i) {
    for (std::size_t j = 0; j < vm_count; ++j) {
      if (i != j) pairs.push_back({i, j});
    }
  }
  return pairs;
}

ProbeSchedule schedule_probes(std::size_t vm_count, std::vector<ProbePair> pairs) {
  CHOREO_REQUIRE(vm_count >= 2);
  ProbeSchedule schedule;
  if (pairs.empty()) return schedule;

  std::vector<std::size_t> out_degree(vm_count, 0), in_degree(vm_count, 0);
  for (const ProbePair& p : pairs) {
    CHOREO_REQUIRE(p.src < vm_count && p.dst < vm_count);
    CHOREO_REQUIRE_MSG(p.src != p.dst, "self-directed probe pair");
    ++out_degree[p.src];
    ++in_degree[p.dst];
  }
  for (std::size_t v = 0; v < vm_count; ++v) {
    schedule.max_degree = std::max({schedule.max_degree, out_degree[v], in_degree[v]});
  }

  // Offset classes ((dst - src) mod n) are disjoint perfect matchings of the
  // complete digraph, so sorting by offset lets first-fit pack each class
  // into one round; src breaks ties deterministically.
  const auto offset_of = [vm_count](const ProbePair& p) {
    return (p.dst + vm_count - p.src) % vm_count;
  };
  std::sort(pairs.begin(), pairs.end(), [&](const ProbePair& a, const ProbePair& b) {
    const std::size_t oa = offset_of(a), ob = offset_of(b);
    if (oa != ob) return oa < ob;
    return a.src < b.src;
  });

  // First-fit: place each pair in the earliest round where its source and
  // destination are both free.
  std::vector<std::vector<char>> src_busy, dst_busy;  // per round, per VM
  for (const ProbePair& p : pairs) {
    std::size_t r = 0;
    while (r < schedule.rounds.size() && (src_busy[r][p.src] || dst_busy[r][p.dst])) ++r;
    if (r == schedule.rounds.size()) {
      schedule.rounds.emplace_back();
      src_busy.emplace_back(vm_count, 0);
      dst_busy.emplace_back(vm_count, 0);
    }
    schedule.rounds[r].push_back(p);
    src_busy[r][p.src] = 1;
    dst_busy[r][p.dst] = 1;
  }
  return schedule;
}

}  // namespace choreo::measure

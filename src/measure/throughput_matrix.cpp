#include "measure/throughput_matrix.h"

#include "measure/packet_train.h"
#include "util/require.h"

namespace choreo::measure {

MatrixResult measure_rate_matrix(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms,
                                 const MeasurementPlan& plan, std::uint64_t epoch) {
  const std::size_t n = vms.size();
  CHOREO_REQUIRE(n >= 2);
  MatrixResult out;
  out.rate_bps = DoubleMatrix(n, n, 0.0);

  // Round r: VM i sends to VM (i + r) mod n. Every VM sources exactly one
  // train per round, so hoses never carry two probes at once; n-1 rounds
  // cover all ordered pairs.
  for (std::size_t r = 1; r < n; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t j = (i + r) % n;
      const auto records = cloud.run_train(vms[i], vms[j], plan.train, epoch + r);
      const double rtt = cloud.ping_rtt_s(vms[i], vms[j]);
      const TrainEstimate est = estimate_train_throughput(records, plan.train, rtt);
      out.rate_bps(i, j) = est.throughput_bps;
      ++out.pairs_measured;
    }
    ++out.rounds;
  }
  out.wall_time_s = plan.setup_overhead_s +
                    static_cast<double>(out.rounds) *
                        (train_duration_s(plan.train) + plan.round_overhead_s);
  return out;
}

place::ClusterView measured_cluster_view(cloud::Cloud& cloud,
                                         const std::vector<cloud::VmId>& vms,
                                         const MeasurementPlan& plan,
                                         std::uint64_t epoch) {
  const std::size_t n = vms.size();
  CHOREO_REQUIRE(n >= 2);
  place::ClusterView view;
  view.rate_bps = measure_rate_matrix(cloud, vms, plan, epoch).rate_bps;
  view.cross_traffic = DoubleMatrix(n, n, 0.0);
  view.cores.assign(n, static_cast<double>(cloud.machine_cores()));

  // Co-location and hop counts from traceroute: hop count 1 means same
  // physical host (§3.3.1). Union same-host pairs into groups.
  view.hops = DoubleMatrix(n, n, 0.0);
  view.colocation_group.assign(n, -1);
  int next_group = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (view.colocation_group[i] < 0) view.colocation_group[i] = next_group++;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      view.hops(i, j) = static_cast<double>(cloud.traceroute_hops(vms[i], vms[j]));
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if (cloud.traceroute_hops(vms[i], vms[j]) == 1) {
        view.colocation_group[j] = view.colocation_group[i];
      }
    }
  }
  return view;
}

place::ClusterView true_cluster_view(cloud::Cloud& cloud,
                                     const std::vector<cloud::VmId>& vms,
                                     std::uint64_t epoch) {
  const std::size_t n = vms.size();
  CHOREO_REQUIRE(n >= 2);
  place::ClusterView view;
  view.rate_bps = DoubleMatrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      view.rate_bps(i, j) = cloud.true_path_rate_bps(vms[i], vms[j], epoch);
    }
  }
  view.cross_traffic = DoubleMatrix(n, n, 0.0);
  view.cores.assign(n, static_cast<double>(cloud.machine_cores()));
  view.hops = DoubleMatrix(n, n, 0.0);
  view.colocation_group.assign(n, -1);
  int next_group = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (view.colocation_group[i] < 0) view.colocation_group[i] = next_group++;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      view.hops(i, j) = static_cast<double>(cloud.traceroute_hops(vms[i], vms[j]));
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if (cloud.vm_host(vms[i]) == cloud.vm_host(vms[j])) {
        view.colocation_group[j] = view.colocation_group[i];
      }
    }
  }
  return view;
}

}  // namespace choreo::measure

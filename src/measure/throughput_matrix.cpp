#include "measure/throughput_matrix.h"

#include <unordered_map>
#include <utility>

#include "measure/packet_train.h"
#include "util/require.h"

namespace choreo::measure {
namespace {

/// Fills the traceroute-derived fields of a tenant view: hop counts and
/// co-location groups (hop count 1 => same host, §3.3.1), plus CPU
/// capacities from the instance type.
void fill_tenant_topology(place::ClusterView& view, cloud::Cloud& cloud,
                          const std::vector<cloud::VmId>& vms) {
  const std::size_t n = vms.size();
  view.cores.assign(n, static_cast<double>(cloud.machine_cores()));
  view.hops = DoubleMatrix(n, n, 0.0);
  view.colocation_group.assign(n, -1);
  int next_group = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (view.colocation_group[i] < 0) view.colocation_group[i] = next_group++;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      view.hops(i, j) = static_cast<double>(cloud.traceroute_hops(vms[i], vms[j]));
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if (cloud.traceroute_hops(vms[i], vms[j]) == 1) {
        view.colocation_group[j] = view.colocation_group[i];
      }
    }
  }
}

}  // namespace

double measurement_wall_time_s(const MeasurementPlan& plan, std::size_t rounds) {
  if (rounds == 0) return 0.0;
  return plan.setup_overhead_s +
         static_cast<double>(rounds) *
             (train_duration_s(plan.train) + plan.round_overhead_s);
}

PairsResult measure_rate_pairs(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms,
                               const std::vector<ProbePair>& pairs,
                               const MeasurementPlan& plan, std::uint64_t epoch) {
  const std::size_t n = vms.size();
  CHOREO_REQUIRE(n >= 2);
  PairsResult out;
  out.rate_bps.assign(pairs.size(), 0.0);
  if (pairs.empty()) return out;

  // Input position of each pair, to map scheduled results back.
  std::unordered_map<std::uint64_t, std::size_t> position;
  position.reserve(pairs.size());
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    const std::uint64_t key = pairs[k].src * n + pairs[k].dst;
    CHOREO_REQUIRE_MSG(position.emplace(key, k).second, "duplicate probe pair");
  }

  const ProbeSchedule schedule = schedule_probes(n, pairs);
  for (std::size_t r = 0; r < schedule.rounds.size(); ++r) {
    const auto& round = schedule.rounds[r];
    // All trains of the round observe the same background realization; the
    // snapshot is computed once and shared across the round's workers.
    const cloud::Cloud::TrafficSnapshot snapshot = cloud.traffic_snapshot(epoch + r);
    std::vector<std::pair<cloud::VmId, cloud::VmId>> vm_pairs;
    vm_pairs.reserve(round.size());
    for (const ProbePair& p : round) vm_pairs.emplace_back(vms[p.src], vms[p.dst]);
    const auto records =
        cloud.run_train_round(vm_pairs, plan.train, snapshot, plan.workers);
    for (std::size_t k = 0; k < round.size(); ++k) {
      const ProbePair& p = round[k];
      const double rtt = cloud.ping_rtt_s(vms[p.src], vms[p.dst]);
      const TrainEstimate est = estimate_train_throughput(records[k], plan.train, rtt);
      out.rate_bps[position.at(p.src * n + p.dst)] = est.throughput_bps;
    }
  }
  out.rounds = schedule.rounds.size();
  out.wall_time_s = measurement_wall_time_s(plan, out.rounds);
  return out;
}

MatrixResult measure_rate_matrix(cloud::Cloud& cloud, const std::vector<cloud::VmId>& vms,
                                 const MeasurementPlan& plan, std::uint64_t epoch) {
  const std::size_t n = vms.size();
  CHOREO_REQUIRE(n >= 2);
  const std::vector<ProbePair> pairs = all_ordered_pairs(n);
  const PairsResult probed = measure_rate_pairs(cloud, vms, pairs, plan, epoch);

  MatrixResult out;
  out.rate_bps = DoubleMatrix(n, n, 0.0);
  for (std::size_t k = 0; k < pairs.size(); ++k) {
    out.rate_bps(pairs[k].src, pairs[k].dst) = probed.rate_bps[k];
  }
  out.pairs_measured = pairs.size();
  out.rounds = probed.rounds;
  out.wall_time_s = probed.wall_time_s;
  return out;
}

RefreshResult refresh_cluster_view(cloud::Cloud& cloud,
                                   const std::vector<cloud::VmId>& vms,
                                   const MeasurementPlan& plan, std::uint64_t epoch,
                                   ViewCache& cache, const RefreshPolicy& policy) {
  const std::size_t n = vms.size();
  CHOREO_REQUIRE(n >= 2);
  cache.resize(n);
  return refresh_cluster_view_with_plan(cloud, vms, plan, epoch, cache,
                                        cache.plan_refresh(epoch, policy));
}

RefreshResult refresh_cluster_view_with_plan(cloud::Cloud& cloud,
                                             const std::vector<cloud::VmId>& vms,
                                             const MeasurementPlan& plan,
                                             std::uint64_t epoch, ViewCache& cache,
                                             RefreshPlan probe_plan) {
  const std::size_t n = vms.size();
  CHOREO_REQUIRE(n >= 2);
  CHOREO_REQUIRE(cache.vm_count() == n);

  RefreshResult out;
  out.plan = std::move(probe_plan);
  if (!out.plan.pairs.empty()) {
    const PairsResult probed = measure_rate_pairs(cloud, vms, out.plan.pairs, plan, epoch);
    for (std::size_t k = 0; k < out.plan.pairs.size(); ++k) {
      cache.store(out.plan.pairs[k].src, out.plan.pairs[k].dst, probed.rate_bps[k],
                  epoch);
    }
    out.pairs_probed = out.plan.pairs.size();
    out.rounds = probed.rounds;
    out.wall_time_s = probed.wall_time_s;
  }

  out.view.rate_bps = cache.rates();
  out.view.cross_traffic = DoubleMatrix(n, n, 0.0);
  out.view.pair_epoch = cache.epochs();
  out.view.view_epoch = epoch;
  fill_tenant_topology(out.view, cloud, vms);
  return out;
}

place::ClusterView measured_cluster_view(cloud::Cloud& cloud,
                                         const std::vector<cloud::VmId>& vms,
                                         const MeasurementPlan& plan,
                                         std::uint64_t epoch) {
  // A one-shot full measurement is an incremental refresh of an empty cache.
  ViewCache cache(vms.size());
  return refresh_cluster_view(cloud, vms, plan, epoch, cache, RefreshPolicy{}).view;
}

place::ClusterView true_cluster_view(cloud::Cloud& cloud,
                                     const std::vector<cloud::VmId>& vms,
                                     std::uint64_t epoch) {
  const std::size_t n = vms.size();
  CHOREO_REQUIRE(n >= 2);
  place::ClusterView view;
  view.rate_bps = DoubleMatrix(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      view.rate_bps(i, j) = cloud.true_path_rate_bps(vms[i], vms[j], epoch);
    }
  }
  view.cross_traffic = DoubleMatrix(n, n, 0.0);
  view.view_epoch = epoch;
  view.cores.assign(n, static_cast<double>(cloud.machine_cores()));
  view.hops = DoubleMatrix(n, n, 0.0);
  view.colocation_group.assign(n, -1);
  int next_group = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (view.colocation_group[i] < 0) view.colocation_group[i] = next_group++;
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      view.hops(i, j) = static_cast<double>(cloud.traceroute_hops(vms[i], vms[j]));
    }
    for (std::size_t j = i + 1; j < n; ++j) {
      if (cloud.vm_host(vms[i]) == cloud.vm_host(vms[j])) {
        view.colocation_group[j] = view.colocation_group[i];
      }
    }
  }
  return view;
}

}  // namespace choreo::measure

#pragma once

#include <cstddef>
#include <vector>

namespace choreo::measure {

/// One ordered VM pair to probe, as indices into the tenant's fleet vector
/// (the same machine indices place::ClusterView uses).
struct ProbePair {
  std::size_t src = 0;
  std::size_t dst = 0;

  friend bool operator==(const ProbePair& a, const ProbePair& b) {
    return a.src == b.src && a.dst == b.dst;
  }
};

/// A conflict-free probe schedule: all trains of one round may run
/// concurrently because no VM appears as source or destination of two trains
/// in the same round — concurrent trains out of (or into) one VM would share
/// its hose and bias each other (§4.1), which is exactly why the paper runs
/// packet trains "in rounds".
///
/// With rounds executing their trains in parallel, the modeled measurement
/// wall-clock is O(rounds), not O(pairs): n-1 rounds for a full n-VM matrix
/// instead of n(n-1) sequential trains.
struct ProbeSchedule {
  std::vector<std::vector<ProbePair>> rounds;
  /// Largest number of trains any single VM sources or sinks: the lower
  /// bound on round count (a bipartite multigraph edge-colors with exactly
  /// its maximum degree, König).
  std::size_t max_degree = 0;

  std::size_t round_count() const { return rounds.size(); }
  std::size_t pair_count() const;

  /// Throws PreconditionError if any round has a VM as source or destination
  /// twice, any pair is out of range / self-directed, or a pair repeats
  /// across rounds.
  void validate(std::size_t vm_count) const;
};

/// All n(n-1) ordered pairs of an n-VM fleet.
std::vector<ProbePair> all_ordered_pairs(std::size_t vm_count);

/// Edge-colors `pairs` into conflict-free rounds.
///
/// Deterministic greedy first-fit over pairs ordered by
/// ((dst - src) mod n, src): each offset class touches every VM at most once
/// as source and once as destination, so for the complete ordered-pair set
/// this reproduces the classic rotation schedule (round r probes i -> i+r+1
/// mod n) and uses exactly n-1 rounds. Arbitrary subsets — the incremental
/// refreshes ViewCache plans — use at most 2*max_degree - 1 rounds and
/// typically close to max_degree.
ProbeSchedule schedule_probes(std::size_t vm_count, std::vector<ProbePair> pairs);

}  // namespace choreo::measure

#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/require.h"

namespace choreo {

double percentile(std::vector<double> values, double q) {
  CHOREO_REQUIRE(!values.empty());
  CHOREO_REQUIRE(q >= 0.0 && q <= 1.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values[0];
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double mean(const std::vector<double>& values) {
  CHOREO_REQUIRE(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double median(std::vector<double> values) { return percentile(std::move(values), 0.5); }

double relative_error(double estimate, double truth) {
  CHOREO_REQUIRE(truth != 0.0);
  return std::abs(estimate - truth) / std::abs(truth);
}

Summary summarize(const std::vector<double>& values) {
  CHOREO_REQUIRE(!values.empty());
  Summary s;
  s.count = values.size();
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  s.min = sorted.front();
  s.max = sorted.back();
  s.mean = mean(values);
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1 ? std::sqrt(sq / static_cast<double>(values.size() - 1)) : 0.0;
  auto pct = [&](double q) {
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
  };
  s.median = pct(0.5);
  s.p05 = pct(0.05);
  s.p25 = pct(0.25);
  s.p75 = pct(0.75);
  s.p90 = pct(0.90);
  s.p95 = pct(0.95);
  s.p99 = pct(0.99);
  return s;
}

Cdf::Cdf(std::vector<double> values) : values_(std::move(values)), sorted_(false) {
  ensure_sorted();
}

void Cdf::add(double v) {
  values_.push_back(v);
  sorted_ = false;
}

void Cdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
}

double Cdf::at(double v) const {
  CHOREO_REQUIRE(!values_.empty());
  ensure_sorted();
  const auto it = std::upper_bound(values_.begin(), values_.end(), v);
  return static_cast<double>(it - values_.begin()) / static_cast<double>(values_.size());
}

double Cdf::quantile(double q) const {
  CHOREO_REQUIRE(!values_.empty());
  CHOREO_REQUIRE(q >= 0.0 && q <= 1.0);
  ensure_sorted();
  if (q <= 0.0) return values_.front();
  const auto idx = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values_.size()))) ;
  return values_[std::min(idx == 0 ? 0 : idx - 1, values_.size() - 1)];
}

double Cdf::fraction_between(double lo, double hi) const {
  CHOREO_REQUIRE(!values_.empty());
  CHOREO_REQUIRE(lo <= hi);
  ensure_sorted();
  const auto a = std::lower_bound(values_.begin(), values_.end(), lo);
  const auto b = std::upper_bound(values_.begin(), values_.end(), hi);
  return static_cast<double>(b - a) / static_cast<double>(values_.size());
}

double Cdf::min() const {
  CHOREO_REQUIRE(!values_.empty());
  ensure_sorted();
  return values_.front();
}

double Cdf::max() const {
  CHOREO_REQUIRE(!values_.empty());
  ensure_sorted();
  return values_.back();
}

std::vector<std::pair<double, double>> Cdf::points(std::size_t max_points) const {
  CHOREO_REQUIRE(max_points >= 2);
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (values_.empty()) return out;
  const std::size_t n = values_.size();
  const std::size_t step = std::max<std::size_t>(1, n / max_points);
  for (std::size_t i = 0; i < n; i += step) {
    out.emplace_back(values_[i], static_cast<double>(i + 1) / static_cast<double>(n));
  }
  if (out.back().first != values_.back() || out.back().second != 1.0) {
    out.emplace_back(values_.back(), 1.0);
  }
  return out;
}

std::string Cdf::to_string(std::size_t max_points) const {
  std::ostringstream os;
  for (const auto& [v, f] : points(max_points)) {
    os << v << "\t" << f << "\n";
  }
  return os.str();
}

void Accumulator::add(double v) {
  if (n_ == 0) {
    min_ = max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++n_;
  const double delta = v - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (v - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

}  // namespace choreo

#pragma once

#include <cstdint>

/// Unit conventions used throughout the library:
///   * time:       double, seconds
///   * bandwidth:  double, bits per second
///   * data size:  double (flow-level) or std::uint64_t (packet-level), bytes
namespace choreo::units {

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;

/// Bits per second from Mbit/s.
constexpr double mbps(double v) { return v * kMega; }
/// Bits per second from Gbit/s.
constexpr double gbps(double v) { return v * kGiga; }
/// Bits per second to Mbit/s (for reporting).
constexpr double to_mbps(double bits_per_sec) { return bits_per_sec / kMega; }

/// Bytes from kibi/mebi/gibi sizes (we use powers of ten, matching the paper's
/// Mbit/s figures and netperf's conventions).
constexpr double kilobytes(double v) { return v * 1e3; }
constexpr double megabytes(double v) { return v * 1e6; }
constexpr double gigabytes(double v) { return v * 1e9; }

/// Seconds from milli/microseconds.
constexpr double millis(double v) { return v * 1e-3; }
constexpr double micros(double v) { return v * 1e-6; }
constexpr double minutes(double v) { return v * 60.0; }

/// Time to transmit `bytes` at `rate_bps` (seconds).
constexpr double transmit_time(double bytes, double rate_bps) {
  return bytes * 8.0 / rate_bps;
}

}  // namespace choreo::units

#include "util/worker_pool.h"

#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/require.h"

namespace choreo::util {

void run_workers(unsigned workers, const std::function<void(unsigned)>& body) {
  CHOREO_REQUIRE(workers >= 1);
  if (workers == 1) {
    body(0);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto guarded = [&](unsigned index) {
    try {
      body(index);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (unsigned w = 1; w < workers; ++w) threads.emplace_back(guarded, w);
  guarded(0);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace choreo::util

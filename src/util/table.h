#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace choreo {

/// Fixed-width text table used by bench binaries to print the rows/series the
/// paper's figures and in-text tables report.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; the row must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_numeric_row(const std::vector<double>& cells, int precision = 2);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders with aligned columns.
  std::string to_string() const;

  /// Comma-separated rendering (for piping into plotting tools).
  std::string to_csv() const;

  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper for table cells).
std::string fmt(double v, int precision = 2);

/// Formats as a percentage, e.g. fmt_pct(0.0835) == "8.35%".
std::string fmt_pct(double fraction, int precision = 1);

}  // namespace choreo

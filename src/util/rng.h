#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "util/require.h"

namespace choreo {

/// Deterministic pseudo-random source used by every stochastic component.
///
/// All simulators, workload generators and placement baselines take an `Rng&`
/// (or a seed) explicitly, so that experiments are reproducible and tests can
/// pin behaviour. Never construct from global entropy inside the library.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    CHOREO_REQUIRE(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    CHOREO_REQUIRE(lo <= hi);
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) {
    CHOREO_REQUIRE(p >= 0.0 && p <= 1.0);
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Exponential with mean `mean` (not rate).
  double exponential(double mean) {
    CHOREO_REQUIRE(mean > 0.0);
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    CHOREO_REQUIRE(stddev >= 0.0);
    if (stddev == 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal where `mu`/`sigma` parameterise the underlying normal.
  double lognormal(double mu, double sigma) {
    CHOREO_REQUIRE(sigma >= 0.0);
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto with shape `alpha` and scale `xm` (minimum value).
  double pareto(double alpha, double xm) {
    CHOREO_REQUIRE(alpha > 0.0 && xm > 0.0);
    const double u = uniform(0.0, 1.0);
    return xm / std::pow(1.0 - u, 1.0 / alpha);
  }

  /// Picks an index in [0, weights.size()) proportionally to `weights`.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; useful for giving each component
  /// of an experiment its own stream while keeping a single top-level seed.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace choreo

#pragma once

#include <functional>

namespace choreo::util {

/// Runs `body(worker_index)` on `workers` threads and joins them all before
/// returning. Worker 0 runs inline on the calling thread (so `workers == 1`
/// spawns nothing and is an ordinary function call — the single-threaded
/// path stays debuggable and sanitizer-quiet); workers 1..N-1 run on
/// std::threads. The first exception thrown by any worker is rethrown on
/// the calling thread after every worker has finished.
///
/// This is the fork-join primitive behind the sharded control plane
/// (core::ShardedSession) and is deliberately dumb: no queue, no futures —
/// callers that need work distribution build it from shared state, which
/// keeps the synchronization they must reason about (and that TSan checks)
/// in one place, theirs.
void run_workers(unsigned workers, const std::function<void(unsigned)>& body);

}  // namespace choreo::util

#pragma once

// Minimal JSON serialization helpers shared by every surface that emits
// JSON documents (bench/bench_common.h's BenchJson, the obs plane's
// MetricsSnapshot dump and Chrome trace writer). One set of escaping rules
// means one strict parser covers all of them.

#include <cmath>
#include <sstream>
#include <string>

namespace choreo::util {

/// Escapes and quotes a string per RFC 8259: the two mandatory escapes
/// (quote, backslash), shorthand escapes for the common control characters,
/// and \u00XX for the rest — no other byte is altered.
inline std::string json_quote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20) {
          // Remaining control characters have no shorthand escape; JSON
          // requires the \u00XX form.
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[u >> 4];
          out += hex[u & 0xF];
        } else {
          out += c;
        }
      }
    }
  }
  out += "\"";
  return out;
}

/// Serializes a double as a JSON number. JSON has no inf/nan literals;
/// emitting them bare ("inf") makes the whole document unparseable. null is
/// the standard stand-in — and the check_bench_json.py gate treats a null
/// metric as the regression it is.
inline std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream out;
  out.precision(15);
  out << v;
  return out.str();
}

}  // namespace choreo::util

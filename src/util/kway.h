#pragma once

#include <cstddef>
#include <limits>

namespace choreo::util {

/// Earliest-first selection with ties to the lowest index: returns the index
/// i in [0, count) minimizing (key_of(i), i) lexicographically, or `count`
/// when every key is +infinity. This is the one comparison a deterministic
/// k-way reduction must use everywhere — the multi-tenant execution
/// interleave, the sharded session's epoch arbiter, and the aggregate
/// event-log merge all order by (time, tenant index), so the merged output
/// is the order events actually happened in regardless of how many threads
/// produced them.
template <typename KeyOf>
std::size_t earliest_index(std::size_t count, KeyOf&& key_of) {
  std::size_t best = count;
  double best_key = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < count; ++i) {
    const double k = key_of(i);
    if (k < best_key) {
      best_key = k;
      best = i;
    }
  }
  return best;
}

/// Lexicographic order on (time, index) — the shared tie-breaking rule made
/// explicit for call sites that compare two keys instead of scanning a range.
inline bool earlier_key(double time_a, std::size_t index_a, double time_b,
                        std::size_t index_b) {
  if (time_a != time_b) return time_a < time_b;
  return index_a < index_b;
}

}  // namespace choreo::util

#include "util/args.h"

#include <cstdlib>
#include <sstream>

#include "util/require.h"

namespace choreo {

void Args::add_option(const std::string& name, const std::string& default_value,
                      const std::string& help) {
  CHOREO_REQUIRE(!name.empty());
  CHOREO_REQUIRE_MSG(!specs_.count(name), "duplicate option --" << name);
  specs_[name] = Spec{default_value, help, false};
}

void Args::add_flag(const std::string& name, const std::string& help) {
  CHOREO_REQUIRE(!name.empty());
  CHOREO_REQUIRE_MSG(!specs_.count(name), "duplicate flag --" << name);
  specs_[name] = Spec{"", help, true};
}

void Args::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    std::string name = token.substr(2);
    // Both `--name value` and `--name=value` spellings are accepted.
    std::string inline_value;
    bool has_inline = false;
    const std::size_t eq = name.find('=');
    if (eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_inline = true;
    }
    const auto it = specs_.find(name);
    CHOREO_REQUIRE_MSG(it != specs_.end(), "unknown option --" << name);
    if (it->second.is_flag) {
      CHOREO_REQUIRE_MSG(!has_inline, "flag --" << name << " takes no value");
      // Move-assign: GCC 12's -O3 -Wrestrict false-positives on the
      // operator=(const char*) overload here.
      values_[name] = std::string("1");
    } else if (has_inline) {
      values_[name] = std::move(inline_value);
    } else {
      CHOREO_REQUIRE_MSG(i + 1 < argc, "option --" << name << " needs a value");
      values_[name] = std::string(argv[++i]);
    }
  }
}

std::string Args::get(const std::string& name) const {
  const auto spec = specs_.find(name);
  CHOREO_REQUIRE_MSG(spec != specs_.end(), "undeclared option --" << name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : spec->second.default_value;
}

double Args::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const double out = std::strtod(v.c_str(), &end);
  CHOREO_REQUIRE_MSG(end != nullptr && *end == '\0' && !v.empty(),
                     "option --" << name << " expects a number, got '" << v << "'");
  return out;
}

std::int64_t Args::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const long long out = std::strtoll(v.c_str(), &end, 10);
  CHOREO_REQUIRE_MSG(end != nullptr && *end == '\0' && !v.empty(),
                     "option --" << name << " expects an integer, got '" << v << "'");
  return out;
}

bool Args::get_flag(const std::string& name) const {
  const auto spec = specs_.find(name);
  CHOREO_REQUIRE_MSG(spec != specs_.end() && spec->second.is_flag,
                     "undeclared flag --" << name);
  return values_.count(name) > 0;
}

std::string Args::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n";
  for (const auto& [name, spec] : specs_) {
    os << "  --" << name;
    if (!spec.is_flag) os << " <value>";
    os << "  " << spec.help;
    if (!spec.is_flag && !spec.default_value.empty()) {
      os << " (default: " << spec.default_value << ")";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace choreo

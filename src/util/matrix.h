#pragma once

#include <cstddef>
#include <vector>

#include "util/require.h"

namespace choreo {

/// Dense row-major matrix. Used for traffic matrices (bytes task->task) and
/// network rate matrices (bits/s machine->machine).
template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Square convenience constructor.
  explicit Matrix(std::size_t n, T fill = T{}) : Matrix(n, n, fill) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    CHOREO_REQUIRE(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    CHOREO_REQUIRE(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Sum of all entries.
  T total() const {
    T sum{};
    for (const T& v : data_) sum += v;
    return sum;
  }

  /// Sum of row r (total egress of task r for a traffic matrix).
  T row_sum(std::size_t r) const {
    CHOREO_REQUIRE(r < rows_);
    T sum{};
    for (std::size_t c = 0; c < cols_; ++c) sum += data_[r * cols_ + c];
    return sum;
  }

  /// Sum of column c (total ingress of task c for a traffic matrix).
  T col_sum(std::size_t c) const {
    CHOREO_REQUIRE(c < cols_);
    T sum{};
    for (std::size_t r = 0; r < rows_; ++r) sum += data_[r * cols_ + c];
    return sum;
  }

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

  const std::vector<T>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using DoubleMatrix = Matrix<double>;

}  // namespace choreo

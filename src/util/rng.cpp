#include "util/rng.h"

#include <cmath>
#include <numeric>

namespace choreo {

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  CHOREO_REQUIRE(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CHOREO_REQUIRE(w >= 0.0);
    total += w;
  }
  CHOREO_REQUIRE_MSG(total > 0.0, "weights must not all be zero");
  double r = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (r < weights[i]) return i;
    r -= weights[i];
  }
  return weights.size() - 1;  // numerical edge: fell off the end
}

}  // namespace choreo

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace choreo {

/// Minimal command-line parser for the example/driver binaries:
/// `--name value` options and bare `--flag` switches, with typed accessors,
/// defaults, and generated usage text. Unknown options throw, so typos in
/// experiment scripts fail loudly instead of silently using defaults.
class Args {
 public:
  /// Declares an option before parsing; `help` feeds usage().
  void add_option(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv; throws PreconditionError on unknown or malformed options.
  void parse(int argc, const char* const* argv);

  std::string get(const std::string& name) const;
  double get_double(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Positional arguments (everything not starting with --).
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage(const std::string& program) const;

 private:
  struct Spec {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace choreo

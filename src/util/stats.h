#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace choreo {

/// Summary statistics over a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
  double p05 = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// Computes summary statistics; requires a non-empty sample.
Summary summarize(const std::vector<double>& values);

/// Linear-interpolated percentile, q in [0,1]; requires non-empty sample.
double percentile(std::vector<double> values, double q);

double mean(const std::vector<double>& values);
double median(std::vector<double> values);

/// |a - b| / |b|; used throughout for "relative error vs ground truth".
double relative_error(double estimate, double truth);

/// Empirical cumulative distribution function over a sample.
///
/// Used by every figure-reproduction bench to print CDFs the way the paper
/// plots them (value on x, cumulative fraction on y).
class Cdf {
 public:
  Cdf() = default;
  explicit Cdf(std::vector<double> values);

  void add(double v);
  /// Fraction of samples <= v.
  double at(double v) const;
  /// Smallest sample value with CDF >= q (inverse CDF), q in [0,1].
  double quantile(double q) const;
  /// Fraction of samples within [lo, hi].
  double fraction_between(double lo, double hi) const;

  std::size_t size() const { return sorted_ ? values_.size() : values_.size(); }
  bool empty() const { return values_.empty(); }
  double min() const;
  double max() const;

  /// Rows of (value, cumulative fraction) suitable for plotting; at most
  /// `max_points` rows, evenly spaced across the sorted sample.
  std::vector<std::pair<double, double>> points(std::size_t max_points = 50) const;

  /// Renders the CDF as fixed-width text rows: "value cum_frac".
  std::string to_string(std::size_t max_points = 20) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> values_;
  mutable bool sorted_ = true;
};

/// Online mean/variance accumulator (Welford).
class Accumulator {
 public:
  void add(double v);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< sample variance; 0 when n < 2
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace choreo

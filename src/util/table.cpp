#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.h"

namespace choreo {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  CHOREO_REQUIRE(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  CHOREO_REQUIRE_MSG(cells.size() == headers_.size(),
                     "row has " << cells.size() << " cells, expected " << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_numeric_row(const std::vector<double>& cells, int precision) {
  std::vector<std::string> text;
  text.reserve(cells.size());
  for (double v : cells) text.push_back(fmt(v, precision));
  add_row(std::move(text));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) { return os << t.to_string(); }

}  // namespace choreo

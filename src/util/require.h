#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace choreo {

/// Thrown when a precondition of a public API is violated.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant is violated (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void fail_require(const char* expr, const char* file, int line,
                                      const std::string& message) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) os << " (" << message << ")";
  throw PreconditionError(os.str());
}

[[noreturn]] inline void fail_invariant(const char* expr, const char* file, int line,
                                        const std::string& message) {
  std::ostringstream os;
  os << "invariant failed: " << expr << " at " << file << ":" << line;
  if (!message.empty()) os << " (" << message << ")";
  throw InvariantError(os.str());
}

}  // namespace detail
}  // namespace choreo

/// Validates a caller-supplied precondition; throws PreconditionError on failure.
#define CHOREO_REQUIRE(expr)                                                 \
  do {                                                                       \
    if (!(expr)) ::choreo::detail::fail_require(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CHOREO_REQUIRE_MSG(expr, msg)                                  \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream os_;                                          \
      os_ << msg;                                                      \
      ::choreo::detail::fail_require(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                  \
  } while (0)

/// Checks an internal invariant; throws InvariantError on failure.
#define CHOREO_ASSERT(expr)                                                    \
  do {                                                                         \
    if (!(expr)) ::choreo::detail::fail_invariant(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CHOREO_ASSERT_MSG(expr, msg)                                     \
  do {                                                                   \
    if (!(expr)) {                                                       \
      std::ostringstream os_;                                            \
      os_ << msg;                                                        \
      ::choreo::detail::fail_invariant(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                    \
  } while (0)

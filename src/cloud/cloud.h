#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cloud/profile.h"
#include "flowsim/sim.h"
#include "net/routing.h"
#include "obs/observer.h"
#include "net/topology.h"
#include "packetsim/event_queue.h"
#include "packetsim/path.h"
#include "packetsim/sink.h"
#include "packetsim/udp_train.h"
#include "util/rng.h"

namespace choreo::cloud {

using VmId = std::size_t;

/// An emulated public-cloud provider: a fabric topology, per-VM hose-model
/// rate limits, background tenants, and the measurement artefacts
/// (virtualization jitter, timestamp noise, opaque traceroute) that the
/// paper contends with on EC2 and Rackspace.
///
/// The class exposes two kinds of operations:
///   * tenant-visible primitives — what Choreo itself is allowed to use:
///     netperf-style bulk transfers, UDP packet trains, traceroute, ping;
///   * harness primitives — ground truth (true hose rates, noise-free path
///     rates) and application execution, used by tests and benches to score
///     placements exactly as §6 does by running the real traffic.
///
/// Determinism: everything derives from the constructor seed plus the
/// caller-supplied `epoch`; an epoch identifies one realization of the
/// background traffic (think "what the other tenants happen to be doing
/// during this particular run").
class Cloud {
 public:
  Cloud(ProviderProfile profile, std::uint64_t seed);

  const ProviderProfile& profile() const { return profile_; }
  const net::Topology& topology() const { return topo_; }
  int machine_cores() const { return profile_.cores_per_machine; }

  /// Rents `count` VMs; repeated calls extend the tenant's fleet. With
  /// probability `colocate_prob` a VM lands on a host already holding one of
  /// the tenant's VMs (the source of the paper's ~1% same-host pairs).
  std::vector<VmId> allocate_vms(std::size_t count);

  std::size_t vm_count() const { return vms_.size(); }
  net::NodeId vm_host(VmId vm) const;
  /// Ground truth hose (egress) rate of a VM — harness only.
  double vm_hose_bps(VmId vm) const;

  /// Monotonic counter for callers that need fresh background realizations.
  std::uint64_t next_epoch() { return epoch_counter_++; }

  // ---- tenant-visible primitives -----------------------------------------

  /// Hop count as traceroute would report it: 1 for VMs sharing a physical
  /// host, otherwise the fabric path length — except on providers that hide
  /// their tiers (Rackspace reports only {1, 4}, §4.2).
  std::size_t traceroute_hops(VmId a, VmId b) const;

  /// Round-trip time of a small probe (fabric propagation, empty queues).
  double ping_rtt_s(VmId a, VmId b) const;

  /// Bulk-TCP throughput of one connection src->dst measured over
  /// `duration_s` (netperf TCP_STREAM equivalent), including background
  /// traffic and measurement noise.
  double netperf_bps(VmId src, VmId dst, double duration_s, std::uint64_t epoch);

  /// Concurrent netperf probes (for §3.3 interference experiments): all
  /// pairs transfer simultaneously; returns the throughput of each.
  std::vector<double> netperf_concurrent_bps(
      const std::vector<std::pair<VmId, VmId>>& pairs, double duration_s,
      std::uint64_t epoch);

  /// Receiver-side throughput series of one bulk connection, sampled every
  /// `interval_s` (§3.2 samples every 10 ms to estimate cross traffic).
  std::vector<double> probe_series_bps(VmId src, VmId dst, double duration_s,
                                       double interval_s, std::uint64_t epoch);

  /// Sends one §3.1 UDP packet train src->dst through the packet-level
  /// simulator and returns the receiver's timestamped packet log.
  ///
  /// Noise here is drawn from a shared mutable RNG, so results depend on
  /// call order; the measurement plane uses the order-independent
  /// run_train_in_snapshot instead.
  std::vector<packetsim::RecordingSink::Record> run_train(
      VmId src, VmId dst, const packetsim::TrainParams& params, std::uint64_t epoch);

  /// One epoch's view of the background tenants, shared by every train of a
  /// measurement round: the capacity each fabric link has left after the
  /// other tenants' flows, plus their per-link flow counts. Computing it once
  /// per round means concurrent trains of that round observe the *same*
  /// cross-traffic realization — the invariant that keeps parallel probing
  /// equivalent to sequential probing.
  struct TrafficSnapshot {
    std::uint64_t epoch = 0;
    /// Per net::LinkId: capacity minus background usage (floored at a fair
    /// max-min share, since a persistent probe would claw that back).
    std::vector<double> available_bps;
  };

  /// Builds the cross-traffic snapshot for `epoch` (deterministic; const).
  TrafficSnapshot traffic_snapshot(std::uint64_t epoch) const;

  /// Order-independent packet train: identical (src, dst, params, snapshot)
  /// always produce identical records, no matter how many other trains ran
  /// before or run concurrently — all jitter derives from (seed, epoch, src,
  /// dst). Thread-safe: const, touches no mutable state.
  std::vector<packetsim::RecordingSink::Record> run_train_in_snapshot(
      VmId src, VmId dst, const packetsim::TrainParams& params,
      const TrafficSnapshot& snapshot) const;

  /// Runs one conflict-free round of trains — no VM may appear twice as a
  /// source or twice as a destination — on up to `workers` threads. Results
  /// are parallel to `pairs` and byte-identical for any worker count
  /// (pinned by test_determinism).
  std::vector<std::vector<packetsim::RecordingSink::Record>> run_train_round(
      const std::vector<std::pair<VmId, VmId>>& pairs,
      const packetsim::TrainParams& params, const TrafficSnapshot& snapshot,
      unsigned workers = 1) const;

  // ---- harness primitives -------------------------------------------------

  /// One application-level transfer to execute on the cloud.
  struct Transfer {
    VmId src = 0;
    VmId dst = 0;
    double bytes = 0.0;
    double start_s = 0.0;
  };

  struct ExecResult {
    /// Completion time of each transfer, parallel to the input; transfers
    /// between tasks on the same VM complete instantly at their start time.
    std::vector<double> completion_s;
    double makespan_s = 0.0;
  };

  /// Runs the transfers concurrently with background traffic and returns
  /// when they all finish — the paper's §6.1 "we transfer data as specified
  /// by the placement algorithm and the traffic matrix" on live EC2.
  ExecResult execute(const std::vector<Transfer>& transfers, std::uint64_t epoch);

  /// Attaches the observability plane to execute(): per-call
  /// "flowsim.execute" spans and flowsim.* kernel counters (recompute
  /// scope, waterfill rounds, reallocations). execute() may run on several
  /// threads at once — counter adds are atomic and spans commit lock-free,
  /// so attaching an observer never serializes callers.
  void set_observer(const obs::Observer& o);

  /// Noise-free fair-share rate a fresh probe src->dst would get right now.
  double true_path_rate_bps(VmId src, VmId dst, std::uint64_t epoch);

  // ---- fluid-simulation factory (advanced experiments) --------------------

  /// A fluid simulation of this cloud with per-VM hose resources, per-host
  /// vswitch resources and (optionally) background tenant flows installed.
  struct SimBundle {
    explicit SimBundle(const net::Topology& topo) : sim(topo) {}
    flowsim::Sim sim;
    std::vector<flowsim::ResourceId> vm_egress;                       ///< per VmId
    std::unordered_map<net::NodeId, flowsim::ResourceId> host_vswitch;
  };

  std::unique_ptr<SimBundle> make_sim(std::uint64_t epoch, bool with_background = true) const;

  /// FlowSpec for a tenant flow inside a SimBundle's sim: resolves hosts,
  /// attaches the source hose (different hosts) or the vswitch (same host).
  flowsim::FlowSpec tenant_flow(const SimBundle& bundle, VmId src, VmId dst, double bytes,
                                double start_s, std::uint64_t flow_key) const;

 private:
  struct VmRecord {
    net::NodeId host;
    double hose_bps;
  };

  double draw_hose_rate(Rng& rng) const;
  void add_background(SimBundle& bundle, std::uint64_t epoch) const;
  /// Shared train construction behind run_train and run_train_in_snapshot;
  /// `shaper_jitter_frac` is invoked only for inter-host trains, `snapshot`
  /// (optional) caps hop capacities at the background's leftovers.
  std::vector<packetsim::RecordingSink::Record> send_train_impl(
      VmId src, VmId dst, const packetsim::TrainParams& params,
      std::uint64_t sink_seed, std::uint64_t route_key,
      const std::function<double()>& shaper_jitter_frac,
      const TrafficSnapshot* snapshot) const;

  ProviderProfile profile_;
  std::uint64_t seed_;
  net::Topology topo_;
  net::Router router_;
  std::vector<net::NodeId> hosts_;
  std::vector<VmRecord> vms_;
  std::unordered_map<net::NodeId, std::vector<VmId>> host_vms_;
  Rng alloc_rng_;
  Rng noise_rng_;
  std::uint64_t epoch_counter_ = 1;

  obs::Observer obs_;
  struct ObsHandles {
    obs::Counter executes, flows, recomputes, waterfill_rounds, reallocations;
  };
  ObsHandles obs_handles_;
};

}  // namespace choreo::cloud

#include "cloud/profile.h"

#include "util/units.h"

namespace choreo::cloud {

using units::gbps;
using units::mbps;

ProviderProfile ec2_2013() {
  ProviderProfile p;
  p.name = "ec2-2013";

  p.tree.regions = 2;
  p.tree.super_cores = 2;
  p.tree.super_link_bps = gbps(40);
  p.tree.region.pods = 3;
  p.tree.region.racks_per_pod = 4;
  p.tree.region.hosts_per_rack = 10;
  p.tree.region.aggs_per_pod = 2;
  p.tree.region.cores = 2;
  p.tree.region.host_link_bps = gbps(10);
  p.tree.region.agg_link_bps = gbps(10);
  p.tree.region.core_link_bps = gbps(10);
  p.tree.region.link_delay_s = 20e-6;

  // Fig 2(a): knees near 950 and 1100 Mbit/s, ~20% slow band, a whisker of
  // unthrottled instances reaching multi-Gbit/s at any hop distance (Fig 8).
  p.hose_clusters = {
      HoseCluster{0.50, mbps(935), mbps(18)},
      HoseCluster{0.31, mbps(1095), mbps(25)},
      HoseCluster{0.01, mbps(3100), mbps(400)},
  };
  p.slow_band_weight = 0.186;
  p.slow_lo_bps = mbps(310);
  p.slow_hi_bps = mbps(900);

  p.bucket_depth_bytes = 8e3;     // shallow: trains see the token rate fast
  p.bucket_idle_reset_s = 0.5e-3;
  p.vnic_rate_bps = gbps(4);
  p.vswitch_rate_bps = gbps(4.3);

  p.colocate_prob = 0.05;
  p.cores_per_machine = 4;

  p.bg_flow_count = 36;
  p.bg_rate_cap_bps = mbps(400);
  p.bg_mean_on_s = 60.0;
  p.bg_mean_off_s = 90.0;
  p.bg_core_bias = 0.5;

  p.train_rate_jitter_frac = 0.085;
  p.netperf_noise_frac = 0.004;
  p.timestamp_jitter_s = 10e-6;
  p.traceroute_hides_tiers = false;
  return p;
}

ProviderProfile ec2_2012() {
  ProviderProfile p = ec2_2013();
  p.name = "ec2-2012";
  // Fig 1: per-zone spatial spread from ~100 Mbit/s to ~1 Gbit/s with no
  // sharp knees — modelled as one broad band plus a fast shoulder.
  p.hose_clusters = {
      HoseCluster{0.35, mbps(850), mbps(120)},
  };
  p.slow_band_weight = 0.65;
  p.slow_lo_bps = mbps(100);
  p.slow_hi_bps = mbps(950);
  // Fig 1 shows no multi-gigabit outliers: 2012-era instances shared 1G
  // hosts, so even co-located pairs topped out near line rate.
  p.vswitch_rate_bps = mbps(1150);
  p.colocate_prob = 0.02;
  p.bg_flow_count = 60;
  p.bg_rate_cap_bps = mbps(600);
  p.train_rate_jitter_frac = 0.15;
  p.netperf_noise_frac = 0.01;
  return p;
}

ProviderProfile rackspace() {
  ProviderProfile p;
  p.name = "rackspace";

  // Rackspace's topology is opaque (traceroute shows hop counts of only 1 or
  // 4, §4.2); a single-region tree is adequate since all fabric paths are
  // far from saturated at 300 Mbit/s hoses.
  p.tree.regions = 1;
  p.tree.super_cores = 1;
  p.tree.region.pods = 2;
  p.tree.region.racks_per_pod = 4;
  p.tree.region.hosts_per_rack = 10;
  p.tree.region.aggs_per_pod = 2;
  p.tree.region.cores = 2;
  p.tree.region.host_link_bps = gbps(10);
  p.tree.region.agg_link_bps = gbps(10);
  p.tree.region.core_link_bps = gbps(10);
  p.tree.region.link_delay_s = 20e-6;

  // Fig 2(b): "every path has a throughput of almost exactly 300 Mbit/s".
  p.hose_clusters = {HoseCluster{1.0, mbps(300), mbps(1.5)}};
  p.slow_band_weight = 0.0;

  // Deep, idle-resetting burst allowance — a credit-scheduler-style limiter
  // that grants a multi-megabyte quantum at line rate before throttling. A
  // burst overruns the quantum only when its bytes exceed depth*L/(L-R)
  // (the bucket refills while the burst is still being emitted at line rate
  // L=1G): with a 1.7 MB depth that critical size is ~1600 packets, so
  // trains up to 1000-packet bursts report the line rate while 2000-packet
  // bursts collapse onto the enforced 300 Mbit/s — Fig 6(b)'s sharp knee.
  p.bucket_depth_bytes = 1.7e6;
  p.bucket_idle_reset_s = 0.5e-3;
  p.vnic_rate_bps = gbps(1);
  p.vswitch_rate_bps = gbps(4);

  p.colocate_prob = 0.04;
  p.cores_per_machine = 4;

  p.bg_flow_count = 12;
  p.bg_rate_cap_bps = mbps(300);
  p.bg_mean_on_s = 60.0;
  p.bg_mean_off_s = 120.0;
  p.bg_core_bias = 0.3;

  p.train_rate_jitter_frac = 0.03;
  p.netperf_noise_frac = 0.0015;
  p.timestamp_jitter_s = 10e-6;
  p.traceroute_hides_tiers = true;
  return p;
}

}  // namespace choreo::cloud

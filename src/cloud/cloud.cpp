#include "cloud/cloud.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <exception>
#include <mutex>
#include <thread>

#include "util/require.h"
#include "util/units.h"

namespace choreo::cloud {
namespace {

/// Mixes a cloud seed with an epoch and a salt into an independent stream id.
std::uint64_t substream(std::uint64_t seed, std::uint64_t epoch, std::uint64_t salt) {
  std::uint64_t x = seed ^ (epoch * 0x9e3779b97f4a7c15ULL) ^ (salt * 0xbf58476d1ce4e5b9ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Salt for per-pair noise streams: a train's jitter must depend only on
/// (seed, epoch, src, dst) so that concurrent and sequential execution of a
/// round produce byte-identical records.
std::uint64_t pair_salt(VmId src, VmId dst, std::uint64_t lane) {
  return 0x5851f42d4c957f2dULL + src * 1000003ULL + dst * 8191ULL + lane;
}

}  // namespace

Cloud::Cloud(ProviderProfile profile, std::uint64_t seed)
    : profile_(std::move(profile)),
      seed_(seed),
      topo_(net::make_regional_tree(profile_.tree)),
      router_(topo_),
      hosts_(topo_.nodes_of_kind(net::NodeKind::Host)),
      alloc_rng_(substream(seed, 0, 1)),
      noise_rng_(substream(seed, 0, 2)) {
  CHOREO_REQUIRE(!profile_.hose_clusters.empty() || profile_.slow_band_weight > 0.0);
  CHOREO_REQUIRE(!hosts_.empty());
}

double Cloud::draw_hose_rate(Rng& rng) const {
  std::vector<double> weights;
  weights.reserve(profile_.hose_clusters.size() + 1);
  for (const HoseCluster& c : profile_.hose_clusters) weights.push_back(c.weight);
  weights.push_back(profile_.slow_band_weight);
  const std::size_t pick = rng.weighted_index(weights);
  double rate;
  if (pick == profile_.hose_clusters.size()) {
    rate = rng.uniform(profile_.slow_lo_bps, profile_.slow_hi_bps);
  } else {
    const HoseCluster& c = profile_.hose_clusters[pick];
    rate = rng.normal(c.mean_bps, c.stddev_bps);
  }
  return std::max(rate, units::mbps(10));  // keep degenerate draws sane
}

std::vector<VmId> Cloud::allocate_vms(std::size_t count) {
  CHOREO_REQUIRE(count >= 1);
  std::vector<VmId> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    net::NodeId host;
    if (!vms_.empty() && alloc_rng_.chance(profile_.colocate_prob)) {
      // Pack onto a host the tenant already occupies.
      const VmId other = static_cast<VmId>(
          alloc_rng_.uniform_int(0, static_cast<std::int64_t>(vms_.size()) - 1));
      host = vms_[other].host;
    } else {
      host = hosts_[static_cast<std::size_t>(
          alloc_rng_.uniform_int(0, static_cast<std::int64_t>(hosts_.size()) - 1))];
    }
    const VmId id = vms_.size();
    vms_.push_back(VmRecord{host, draw_hose_rate(alloc_rng_)});
    host_vms_[host].push_back(id);
    out.push_back(id);
  }
  return out;
}

net::NodeId Cloud::vm_host(VmId vm) const {
  CHOREO_REQUIRE(vm < vms_.size());
  return vms_[vm].host;
}

double Cloud::vm_hose_bps(VmId vm) const {
  CHOREO_REQUIRE(vm < vms_.size());
  return vms_[vm].hose_bps;
}

std::size_t Cloud::traceroute_hops(VmId a, VmId b) const {
  CHOREO_REQUIRE(a < vms_.size() && b < vms_.size());
  if (vms_[a].host == vms_[b].host) return 1;
  const std::size_t hops = router_.hop_count(vms_[a].host, vms_[b].host);
  if (profile_.traceroute_hides_tiers) return 4;
  return hops;
}

double Cloud::ping_rtt_s(VmId a, VmId b) const {
  CHOREO_REQUIRE(a < vms_.size() && b < vms_.size());
  if (vms_[a].host == vms_[b].host) return 50e-6;
  const net::Route route = router_.route(vms_[a].host, vms_[b].host, 0);
  double one_way = 0.0;
  for (net::LinkId l : route.links) {
    const net::Link& link = topo_.link(l);
    one_way += link.delay_s + 64.0 * 8.0 / link.capacity_bps;
  }
  return 2.0 * one_way + 40e-6;  // virtualization overhead floor
}

std::unique_ptr<Cloud::SimBundle> Cloud::make_sim(std::uint64_t epoch,
                                                  bool with_background) const {
  auto bundle = std::make_unique<SimBundle>(topo_);
  bundle->vm_egress.reserve(vms_.size());
  for (const VmRecord& vm : vms_) {
    bundle->vm_egress.push_back(bundle->sim.add_resource(vm.hose_bps));
  }
  for (net::NodeId host : hosts_) {
    bundle->host_vswitch.emplace(host, bundle->sim.add_resource(profile_.vswitch_rate_bps));
  }
  if (with_background) add_background(*bundle, epoch);
  return bundle;
}

void Cloud::add_background(SimBundle& bundle, std::uint64_t epoch) const {
  Rng rng(substream(seed_, epoch, 3));
  for (std::size_t i = 0; i < profile_.bg_flow_count; ++i) {
    // Background endpoints are other tenants' VMs; we model them as host-level
    // sources with a per-flow cap (their own hose).
    net::NodeId src, dst;
    if (rng.chance(profile_.bg_core_bias) && topo_.node(hosts_.front()).pod >= 0) {
      // Bias: pick hosts in different pods so the flow crosses core links.
      do {
        src = hosts_[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(hosts_.size()) - 1))];
        dst = hosts_[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(hosts_.size()) - 1))];
      } while (src == dst || topo_.node(src).pod == topo_.node(dst).pod);
    } else {
      do {
        src = hosts_[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(hosts_.size()) - 1))];
        dst = hosts_[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(hosts_.size()) - 1))];
      } while (src == dst);
    }
    flowsim::FlowSpec spec;
    spec.src = src;
    spec.dst = dst;
    spec.start_time = 0.0;
    spec.flow_key = substream(seed_, epoch, 100 + i);
    spec.rate_cap = profile_.bg_rate_cap_bps;
    spec.label = "bg";
    const bool start_on = rng.chance(profile_.bg_mean_on_s /
                                     (profile_.bg_mean_on_s + profile_.bg_mean_off_s));
    bundle.sim.add_on_off_flow(spec, profile_.bg_mean_on_s, profile_.bg_mean_off_s,
                               start_on, substream(seed_, epoch, 200 + i));
  }
}

flowsim::FlowSpec Cloud::tenant_flow(const SimBundle& bundle, VmId src, VmId dst,
                                     double bytes, double start_s,
                                     std::uint64_t flow_key) const {
  CHOREO_REQUIRE(src < vms_.size() && dst < vms_.size());
  CHOREO_REQUIRE(src != dst);
  flowsim::FlowSpec spec;
  spec.src = vms_[src].host;
  spec.dst = vms_[dst].host;
  spec.bytes = bytes;
  spec.start_time = start_s;
  spec.flow_key = flow_key;
  if (vms_[src].host == vms_[dst].host) {
    spec.extra_resources.push_back(bundle.host_vswitch.at(vms_[src].host));
  } else {
    spec.extra_resources.push_back(bundle.vm_egress[src]);
  }
  return spec;
}

double Cloud::netperf_bps(VmId src, VmId dst, double duration_s, std::uint64_t epoch) {
  CHOREO_REQUIRE(duration_s > 0.0);
  auto bundle = make_sim(epoch);
  flowsim::FlowSpec spec =
      tenant_flow(*bundle, src, dst, flowsim::kInfiniteBytes, 0.0, substream(seed_, epoch, 7));
  const flowsim::FlowId probe = bundle->sim.add_flow(spec);
  bundle->sim.run_until(duration_s);
  const double raw = bundle->sim.flow(probe).bytes_received * 8.0 / duration_s;
  return raw * (1.0 + noise_rng_.normal(0.0, profile_.netperf_noise_frac));
}

std::vector<double> Cloud::netperf_concurrent_bps(
    const std::vector<std::pair<VmId, VmId>>& pairs, double duration_s,
    std::uint64_t epoch) {
  CHOREO_REQUIRE(!pairs.empty());
  CHOREO_REQUIRE(duration_s > 0.0);
  auto bundle = make_sim(epoch);
  std::vector<flowsim::FlowId> probes;
  probes.reserve(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    flowsim::FlowSpec spec = tenant_flow(*bundle, pairs[i].first, pairs[i].second,
                                         flowsim::kInfiniteBytes, 0.0,
                                         substream(seed_, epoch, 10 + i));
    probes.push_back(bundle->sim.add_flow(spec));
  }
  bundle->sim.run_until(duration_s);
  std::vector<double> out;
  out.reserve(probes.size());
  for (flowsim::FlowId id : probes) {
    const double raw = bundle->sim.flow(id).bytes_received * 8.0 / duration_s;
    out.push_back(raw * (1.0 + noise_rng_.normal(0.0, profile_.netperf_noise_frac)));
  }
  return out;
}

std::vector<double> Cloud::probe_series_bps(VmId src, VmId dst, double duration_s,
                                            double interval_s, std::uint64_t epoch) {
  CHOREO_REQUIRE(duration_s > 0.0 && interval_s > 0.0);
  auto bundle = make_sim(epoch);
  flowsim::FlowSpec spec =
      tenant_flow(*bundle, src, dst, flowsim::kInfiniteBytes, 0.0, substream(seed_, epoch, 8));
  const flowsim::FlowId probe = bundle->sim.add_flow(spec);

  std::vector<double> series;
  series.reserve(static_cast<std::size_t>(duration_s / interval_s) + 1);
  auto* sim_ptr = &bundle->sim;
  double last_bytes = 0.0;
  bundle->sim.add_sampler(interval_s, interval_s, [&series, sim_ptr, probe, &last_bytes,
                                                   interval_s](double) {
    const double bytes = sim_ptr->flow(probe).bytes_received;
    series.push_back((bytes - last_bytes) * 8.0 / interval_s);
    last_bytes = bytes;
  });
  bundle->sim.run_until(duration_s);
  return series;
}

std::vector<packetsim::RecordingSink::Record> Cloud::send_train_impl(
    VmId src, VmId dst, const packetsim::TrainParams& params, std::uint64_t sink_seed,
    std::uint64_t route_key, const std::function<double()>& shaper_jitter_frac,
    const TrafficSnapshot* snapshot) const {
  CHOREO_REQUIRE(src < vms_.size() && dst < vms_.size());
  CHOREO_REQUIRE(src != dst);
  packetsim::EventQueue events;
  packetsim::RecordingSink sink(profile_.timestamp_jitter_s, sink_seed);

  const net::NodeId src_host = vms_[src].host;
  const net::NodeId dst_host = vms_[dst].host;

  packetsim::ShaperSpec shaper;
  std::vector<packetsim::HopSpec> hops;
  if (src_host == dst_host) {
    shaper.enabled = false;
    hops.push_back(packetsim::HopSpec{profile_.vswitch_rate_bps, 5e-6, 2e6});
  } else {
    shaper.enabled = true;
    // Virtualization noise: this train observes the hose through one
    // scheduling quantum, not the long-run average. The jitter draw happens
    // only on this branch, so same-host trains consume no randomness.
    shaper.rate_bps = vms_[src].hose_bps * (1.0 + shaper_jitter_frac());
    shaper.rate_bps = std::max(shaper.rate_bps, units::mbps(10));
    shaper.depth_bytes = profile_.bucket_depth_bytes;
    shaper.idle_reset_s = profile_.bucket_idle_reset_s;
    const net::Route route = router_.route(src_host, dst_host, route_key);
    hops.reserve(route.links.size());
    for (net::LinkId l : route.links) {
      const net::Link& link = topo_.link(l);
      // With a snapshot, each hop is capped at what the background tenants
      // left over; without one the train sees raw link capacity.
      const double cap = snapshot && l < snapshot->available_bps.size()
                             ? std::min(link.capacity_bps, snapshot->available_bps[l])
                             : link.capacity_bps;
      hops.push_back(packetsim::HopSpec{cap, link.delay_s, 2e6});
    }
  }

  packetsim::Path path(events, shaper, hops, &sink);
  packetsim::TrainParams tuned = params;
  tuned.line_rate_bps = profile_.vnic_rate_bps;
  packetsim::send_train(events, path.entry(), tuned, /*flow_id=*/1, /*start_time=*/0.0);
  events.run();
  return sink.records();
}

std::vector<packetsim::RecordingSink::Record> Cloud::run_train(
    VmId src, VmId dst, const packetsim::TrainParams& params, std::uint64_t epoch) {
  return send_train_impl(src, dst, params, substream(seed_, epoch, 21),
                         substream(seed_, epoch, 22),
                         [this] { return noise_rng_.normal(0.0, profile_.train_rate_jitter_frac); },
                         /*snapshot=*/nullptr);
}

Cloud::TrafficSnapshot Cloud::traffic_snapshot(std::uint64_t epoch) const {
  TrafficSnapshot snap;
  snap.epoch = epoch;
  auto bundle = make_sim(epoch, /*with_background=*/true);
  // Let the ON-OFF background settle into its epoch state before sampling —
  // the same warm-up true_path_rate_bps uses.
  bundle->sim.run_until(1e-3);
  const auto loads = bundle->sim.link_loads();
  snap.available_bps.resize(loads.size());
  for (std::size_t l = 0; l < loads.size(); ++l) {
    const double cap = topo_.link(l).capacity_bps;
    // Residual capacity, floored at the max-min share a persistent probe
    // would win back from the background flows sharing the link.
    const double fair = cap / static_cast<double>(loads[l].flows + 1);
    snap.available_bps[l] = std::max(cap - loads[l].used_bps, fair);
  }
  return snap;
}

std::vector<packetsim::RecordingSink::Record> Cloud::run_train_in_snapshot(
    VmId src, VmId dst, const packetsim::TrainParams& params,
    const TrafficSnapshot& snapshot) const {
  // Same train construction as run_train, but every noise stream is keyed by
  // (seed, epoch, src, dst) instead of shared order-dependent RNG state, and
  // hop capacities come from the round's cross-traffic snapshot.
  const std::uint64_t epoch = snapshot.epoch;
  const auto jitter = [&] {
    Rng rng(substream(seed_, epoch, pair_salt(src, dst, 1)));
    return rng.normal(0.0, profile_.train_rate_jitter_frac);
  };
  return send_train_impl(src, dst, params, substream(seed_, epoch, pair_salt(src, dst, 0)),
                         substream(seed_, epoch, pair_salt(src, dst, 2)), jitter,
                         &snapshot);
}

std::vector<std::vector<packetsim::RecordingSink::Record>> Cloud::run_train_round(
    const std::vector<std::pair<VmId, VmId>>& pairs,
    const packetsim::TrainParams& params, const TrafficSnapshot& snapshot,
    unsigned workers) const {
  CHOREO_REQUIRE(!pairs.empty());
  // Enforce the conflict-free contract: a VM sourcing (or sinking) two
  // simultaneous trains would share its hose (vNIC) between them and bias
  // both estimates (§4.1).
  std::vector<char> src_busy(vms_.size(), 0), dst_busy(vms_.size(), 0);
  for (const auto& [s, d] : pairs) {
    CHOREO_REQUIRE(s < vms_.size() && d < vms_.size() && s != d);
    CHOREO_REQUIRE_MSG(!src_busy[s] && !dst_busy[d],
                       "round is not conflict-free: a VM appears twice");
    src_busy[s] = dst_busy[d] = 1;
  }

  std::vector<std::vector<packetsim::RecordingSink::Record>> out(pairs.size());
  const unsigned n_workers =
      std::max(1u, std::min<unsigned>(workers, static_cast<unsigned>(pairs.size())));
  if (n_workers == 1) {
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      out[i] = run_train_in_snapshot(pairs[i].first, pairs[i].second, params, snapshot);
    }
    return out;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto worker = [&] {
    for (std::size_t i = next.fetch_add(1); i < pairs.size(); i = next.fetch_add(1)) {
      try {
        out[i] = run_train_in_snapshot(pairs[i].first, pairs[i].second, params, snapshot);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(n_workers);
  for (unsigned w = 0; w < n_workers; ++w) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

void Cloud::set_observer(const obs::Observer& o) {
  obs_ = o;
  obs_handles_.executes = o.counter("flowsim.executes");
  obs_handles_.flows = o.counter("flowsim.flows");
  obs_handles_.recomputes = o.counter("flowsim.recomputes");
  obs_handles_.waterfill_rounds = o.counter("flowsim.waterfill_rounds");
  obs_handles_.reallocations = o.counter("flowsim.reallocations");
}

Cloud::ExecResult Cloud::execute(const std::vector<Transfer>& transfers,
                                 std::uint64_t epoch) {
  CHOREO_REQUIRE(!transfers.empty());
  CHOREO_OBS_SPAN(span, obs_, "flowsim.execute", "flowsim");
  auto bundle = make_sim(epoch);
  // Transfers finish exactly once and are never queried for routes again, so
  // let the sim release their storage as they complete — large batches (and
  // the harness loops that execute thousands of placements) then hold memory
  // proportional to the in-flight transfer set only.
  bundle->sim.set_auto_retire(true);
  ExecResult result;
  result.completion_s.assign(transfers.size(), 0.0);

  std::vector<std::pair<std::size_t, flowsim::FlowId>> live;  // transfer idx -> flow
  bool any_flow = false;
  for (std::size_t i = 0; i < transfers.size(); ++i) {
    const Transfer& tr = transfers[i];
    CHOREO_REQUIRE(tr.bytes >= 0.0);
    if (tr.src == tr.dst || tr.bytes == 0.0) {
      // Same-VM transfers cost nothing on the network (§5: intra-machine
      // links are modelled as paths with essentially infinite rate).
      result.completion_s[i] = tr.start_s;
      continue;
    }
    flowsim::FlowSpec spec = tenant_flow(*bundle, tr.src, tr.dst, tr.bytes, tr.start_s,
                                         substream(seed_, epoch, 1000 + i));
    live.emplace_back(i, bundle->sim.add_flow(spec));
    any_flow = true;
  }

  if (any_flow) {
    bundle->sim.run_to_completion(/*t_max=*/1e7);
    for (const auto& [idx, flow] : live) {
      const flowsim::FlowState& st = bundle->sim.flow(flow);
      CHOREO_ASSERT(st.finished);
      result.completion_s[idx] = st.completion_time;
    }
  }
  result.makespan_s = 0.0;
  for (double c : result.completion_s) result.makespan_s = std::max(result.makespan_s, c);

  // The bundle is local to this call, so its kernel counters ARE the deltas.
  const flowsim::MaxMinKernel::Stats& ks = bundle->sim.kernel_stats();
  CHOREO_OBS_INC(obs_handles_.executes, obs_);
  CHOREO_OBS_ADD(obs_handles_.flows, obs_, live.size());
  CHOREO_OBS_ADD(obs_handles_.recomputes, obs_, ks.recomputes);
  CHOREO_OBS_ADD(obs_handles_.waterfill_rounds, obs_, ks.waterfill_rounds);
  CHOREO_OBS_ADD(obs_handles_.reallocations, obs_, bundle->sim.reallocations());
  span.arg("flows", static_cast<double>(live.size()));
  span.arg("recomputes", static_cast<double>(ks.recomputes));
  span.sim(transfers.front().start_s, result.makespan_s - transfers.front().start_s);
  return result;
}

double Cloud::true_path_rate_bps(VmId src, VmId dst, std::uint64_t epoch) {
  auto bundle = make_sim(epoch);
  flowsim::FlowSpec spec =
      tenant_flow(*bundle, src, dst, flowsim::kInfiniteBytes, 0.0, substream(seed_, epoch, 9));
  const flowsim::FlowId probe = bundle->sim.add_flow(spec);
  bundle->sim.run_until(1e-3);
  return bundle->sim.flow(probe).rate_bps;
}

}  // namespace choreo::cloud

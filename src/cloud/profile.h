#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/topology.h"

namespace choreo::cloud {

/// One cluster of the per-VM hose-rate distribution (a mixture component).
struct HoseCluster {
  double weight = 1.0;
  double mean_bps = 1e9;
  double stddev_bps = 0.0;
};

/// Everything that distinguishes one emulated provider from another.
///
/// The default-constructed profile is deliberately unusable; start from one
/// of the factories below (`ec2_2013`, `ec2_2012`, `rackspace`) and tweak.
/// DESIGN.md §2 documents how each knob maps to a behaviour the paper
/// measured on the real providers.
struct ProviderProfile {
  std::string name;

  // ---- fabric ----
  net::RegionalTreeParams tree;

  // ---- per-VM egress rate limiting (the "hose", §4.3) ----
  /// Mixture from which each VM's hose rate is drawn. EC2-2013 uses two
  /// narrow clusters (the Fig 2(a) knees at ~950 and ~1100 Mbit/s), a slow
  /// band and a tiny unthrottled cluster; Rackspace is a single spike at
  /// 300 Mbit/s; EC2-2012 is a wide band (Fig 1).
  std::vector<HoseCluster> hose_clusters;
  /// Extra mixture component drawn uniformly in [slow_lo, slow_hi]; weight 0
  /// disables it.
  double slow_band_weight = 0.0;
  double slow_lo_bps = 0.0;
  double slow_hi_bps = 0.0;

  // ---- shaper (token-bucket enforcement of the hose) ----
  /// Burst allowance. Shallow (EC2) means short packet trains already see
  /// the token rate; deep with idle-reset (Rackspace) means bursts below the
  /// depth pass at line rate — the mechanism behind Fig 6(b).
  double bucket_depth_bytes = 8e3;
  /// Credit-style limiters restore full burst allowance after this much
  /// idle time; negative disables the reset.
  double bucket_idle_reset_s = -1.0;
  /// VM virtual-NIC line rate (emission rate into the shaper).
  double vnic_rate_bps = 4e9;
  /// Capacity shared by VM pairs co-located on one host (no hose crossing);
  /// this is what makes same-host paths show ~4 Gbit/s on EC2.
  double vswitch_rate_bps = 4.3e9;

  // ---- VM allocation ----
  /// Probability that a newly allocated VM is packed onto a host that
  /// already carries one of the tenant's VMs (gives the ~1% same-host pairs
  /// the paper sees).
  double colocate_prob = 0.05;
  int cores_per_machine = 4;

  // ---- background (other tenants) ----
  std::size_t bg_flow_count = 0;
  double bg_rate_cap_bps = 400e6;   ///< per background flow
  double bg_mean_on_s = 60.0;
  double bg_mean_off_s = 60.0;
  /// Fraction of background flows that are pinned to cross the first core
  /// link, concentrating load there (creates the mild long-path derating of
  /// Fig 8 and the temporal-error tail of Fig 7(a)).
  double bg_core_bias = 0.5;

  // ---- measurement artefacts ----
  /// Short-timescale virtualization noise: the effective token rate a single
  /// packet train observes is hose * (1 + N(0, sigma)).
  double train_rate_jitter_frac = 0.08;
  /// Multiplicative noise on each netperf-style reading.
  double netperf_noise_frac = 0.004;
  /// Kernel timestamping jitter at the receiver (SO_TIMESTAMPNS).
  double timestamp_jitter_s = 10e-6;
  /// Rackspace's traceroute hides its switch tiers: hop counts come back as
  /// 1 (same host) or 4 (anything else) — §4.2.
  bool traceroute_hides_tiers = false;
};

/// Amazon EC2 as measured in May 2013 (Fig 2(a), Fig 6(a), Fig 7(a), Fig 8).
ProviderProfile ec2_2013();

/// Amazon EC2 as measured in May 2012 (Fig 1): wide spatial variability.
ProviderProfile ec2_2012();

/// Rackspace 8-GByte instances (Fig 2(b), Fig 6(b), Fig 7(b)): flat
/// 300 Mbit/s hose, deep burst allowance, opaque traceroute.
ProviderProfile rackspace();

}  // namespace choreo::cloud

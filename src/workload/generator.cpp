#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace choreo::workload {
namespace {

double draw_cpu(Rng& rng, const GeneratorConfig& cfg) {
  const double raw = rng.uniform(cfg.min_cpu, cfg.max_cpu);
  // Round to half-cores, as instance sizing usually is.
  return std::max(cfg.min_cpu, std::round(raw * 2.0) / 2.0);
}

double draw_bytes(Rng& rng, const GeneratorConfig& cfg) {
  return rng.lognormal(std::log(cfg.median_transfer_bytes), cfg.size_sigma);
}

std::size_t draw_tasks(Rng& rng, const GeneratorConfig& cfg) {
  return static_cast<std::size_t>(
      rng.uniform_int(static_cast<std::int64_t>(cfg.min_tasks),
                      static_cast<std::int64_t>(cfg.max_tasks)));
}

place::Application make_shell(Rng& rng, const GeneratorConfig& cfg, std::size_t tasks,
                              const char* name) {
  place::Application app;
  app.name = name;
  app.cpu_demand.reserve(tasks);
  for (std::size_t t = 0; t < tasks; ++t) app.cpu_demand.push_back(draw_cpu(rng, cfg));
  app.traffic_bytes = DoubleMatrix(tasks, tasks, 0.0);
  return app;
}

place::Application gen_mapreduce(Rng& rng, const GeneratorConfig& cfg) {
  const std::size_t tasks = std::max<std::size_t>(4, draw_tasks(rng, cfg));
  place::Application app = make_shell(rng, cfg, tasks, "mapreduce");
  // Split into maps and reducers (at least one of each, maps >= reducers).
  const std::size_t reducers = std::max<std::size_t>(
      1, static_cast<std::size_t>(rng.uniform_int(1, static_cast<std::int64_t>(tasks / 2))));
  const std::size_t maps = tasks - reducers;
  const double skew = rng.uniform(0.0, cfg.max_shuffle_skew);
  // Per-map output, partitioned over reducers with optional skew: reducer r
  // receives a share proportional to (1-skew) + skew * w_r.
  std::vector<double> reducer_weight(reducers);
  double wsum = 0.0;
  for (double& w : reducer_weight) {
    w = rng.pareto(1.5, 1.0);
    wsum += w;
  }
  for (std::size_t m = 0; m < maps; ++m) {
    const double output = draw_bytes(rng, cfg);
    for (std::size_t r = 0; r < reducers; ++r) {
      const double uniform_share = 1.0 / static_cast<double>(reducers);
      const double skewed_share = reducer_weight[r] / wsum;
      const double share = (1.0 - skew) * uniform_share + skew * skewed_share;
      app.traffic_bytes(m, maps + r) = output * share;
    }
  }
  return app;
}

place::Application gen_scatter_gather(Rng& rng, const GeneratorConfig& cfg) {
  const std::size_t tasks = std::max<std::size_t>(3, draw_tasks(rng, cfg));
  place::Application app = make_shell(rng, cfg, tasks, "scatter-gather");
  const std::size_t workers = tasks - 1;  // task 0 coordinates
  const bool heavy_gather = rng.chance(0.7);
  for (std::size_t w = 1; w <= workers; ++w) {
    const double request = draw_bytes(rng, cfg) * (heavy_gather ? 0.05 : 1.0);
    const double reply = draw_bytes(rng, cfg) * (heavy_gather ? 1.0 : 0.05);
    app.traffic_bytes(0, w) = request;
    app.traffic_bytes(w, 0) = reply;
  }
  return app;
}

place::Application gen_pipeline(Rng& rng, const GeneratorConfig& cfg) {
  const std::size_t tasks = std::max<std::size_t>(3, draw_tasks(rng, cfg));
  place::Application app = make_shell(rng, cfg, tasks, "pipeline");
  for (std::size_t t = 0; t + 1 < tasks; ++t) {
    app.traffic_bytes(t, t + 1) = draw_bytes(rng, cfg);
  }
  return app;
}

place::Application gen_star(Rng& rng, const GeneratorConfig& cfg) {
  const std::size_t tasks = std::max<std::size_t>(3, draw_tasks(rng, cfg));
  place::Application app = make_shell(rng, cfg, tasks, "star");
  for (std::size_t s = 1; s < tasks; ++s) {
    app.traffic_bytes(0, s) = draw_bytes(rng, cfg);
    if (rng.chance(0.5)) app.traffic_bytes(s, 0) = draw_bytes(rng, cfg) * 0.3;
  }
  return app;
}

place::Application gen_uniform(Rng& rng, const GeneratorConfig& cfg) {
  const std::size_t tasks = std::max<std::size_t>(3, draw_tasks(rng, cfg));
  place::Application app = make_shell(rng, cfg, tasks, "uniform");
  // All pairs exchange nearly the same amount: little for Choreo to exploit.
  const double base = draw_bytes(rng, cfg) / static_cast<double>(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    for (std::size_t j = 0; j < tasks; ++j) {
      if (i == j) continue;
      app.traffic_bytes(i, j) = base * rng.uniform(0.9, 1.1);
    }
  }
  return app;
}

}  // namespace

const char* to_string(Pattern p) {
  switch (p) {
    case Pattern::MapReduce: return "mapreduce";
    case Pattern::ScatterGather: return "scatter-gather";
    case Pattern::Pipeline: return "pipeline";
    case Pattern::Star: return "star";
    case Pattern::Uniform: return "uniform";
  }
  return "?";
}

place::Application generate_app(Rng& rng, Pattern pattern, const GeneratorConfig& cfg) {
  CHOREO_REQUIRE(cfg.min_tasks >= 3 && cfg.min_tasks <= cfg.max_tasks);
  CHOREO_REQUIRE(cfg.median_transfer_bytes > 0.0);
  CHOREO_REQUIRE(cfg.min_cpu > 0.0 && cfg.min_cpu <= cfg.max_cpu);
  place::Application app;
  switch (pattern) {
    case Pattern::MapReduce: app = gen_mapreduce(rng, cfg); break;
    case Pattern::ScatterGather: app = gen_scatter_gather(rng, cfg); break;
    case Pattern::Pipeline: app = gen_pipeline(rng, cfg); break;
    case Pattern::Star: app = gen_star(rng, cfg); break;
    case Pattern::Uniform: app = gen_uniform(rng, cfg); break;
  }
  app.validate();
  return app;
}

place::Application generate_app(Rng& rng, const GeneratorConfig& cfg) {
  CHOREO_REQUIRE(cfg.pattern_weights.size() == 5);
  const auto pick = static_cast<Pattern>(rng.weighted_index(cfg.pattern_weights));
  return generate_app(rng, pick, cfg);
}

}  // namespace choreo::workload

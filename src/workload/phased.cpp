#include "workload/phased.h"

#include "util/require.h"

namespace choreo::workload {

place::PhasedApplication generate_phased_app(Rng& rng, const PhasedConfig& config) {
  CHOREO_REQUIRE(config.min_phases >= 1 && config.min_phases <= config.max_phases);
  const std::size_t phases = static_cast<std::size_t>(rng.uniform_int(
      static_cast<std::int64_t>(config.min_phases),
      static_cast<std::int64_t>(config.max_phases)));

  // The first phase fixes the task count and CPU demands; later phases are
  // fresh patterns re-fitted onto the same task set.
  GeneratorConfig gen = config.gen;
  place::Application first = generate_app(rng, gen);
  place::PhasedApplication out;
  out.name = "phased-" + first.name;
  out.cpu_demand = first.cpu_demand;
  out.phase_traffic.push_back(first.traffic_bytes);

  gen.min_tasks = gen.max_tasks = first.task_count();
  for (std::size_t k = 1; k < phases; ++k) {
    place::Application next = generate_app(rng, gen);
    CHOREO_ASSERT(next.task_count() == out.task_count());
    // Random task relabelling so phase hotspots move between tasks.
    std::vector<std::size_t> perm(out.task_count());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    rng.shuffle(perm);
    DoubleMatrix relabelled(out.task_count(), out.task_count(), 0.0);
    for (std::size_t i = 0; i < perm.size(); ++i) {
      for (std::size_t j = 0; j < perm.size(); ++j) {
        relabelled(perm[i], perm[j]) = next.traffic_bytes(i, j);
      }
    }
    out.phase_traffic.push_back(std::move(relabelled));
  }
  out.validate();
  return out;
}

}  // namespace choreo::workload

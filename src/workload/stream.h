#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "place/app.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/phased.h"
#include "workload/trace.h"

namespace choreo::workload {

/// Pull-based source of applications ordered by arrival time — how workloads
/// reach the discrete-event session runtime. next() yields applications with
/// non-decreasing `arrival_s` until the stream is exhausted; the runtime
/// holds at most one look-ahead application, so a three-week trace streams
/// through a session in O(1) memory instead of being materialized into a
/// vector up front.
class ArrivalStream {
 public:
  virtual ~ArrivalStream() = default;

  /// The next application (with `arrival_s` set), or nullopt when the
  /// stream is exhausted. Implementations must yield non-decreasing arrival
  /// times.
  virtual std::optional<place::Application> next() = 0;
};

/// Adapter for a pre-materialized workload vector (what `Controller::run`
/// receives). Non-owning: the vector must outlive the stream.
class VectorArrivalStream final : public ArrivalStream {
 public:
  explicit VectorArrivalStream(const std::vector<place::Application>& apps)
      : apps_(&apps) {}

  std::optional<place::Application> next() override;

 private:
  const std::vector<place::Application>* apps_;
  std::size_t pos_ = 0;
};

/// Streaming equivalent of `HpCloudTrace`'s arrival process: a diurnally
/// modulated Poisson process (thinning) over `generate_app` draws, produced
/// one application at a time. Unlike HpCloudTrace it never materializes the
/// trace (and skips the hourly byte series the predictability analysis
/// needs), so week- or month-long sessions stream at constant memory.
class TraceArrivalStream final : public ArrivalStream {
 public:
  TraceArrivalStream(std::uint64_t seed, TraceConfig config);

  std::optional<place::Application> next() override;

  /// Applications emitted so far.
  std::uint64_t emitted() const { return emitted_; }

 private:
  TraceConfig config_;
  Rng rng_;
  double t_hours_ = 0.0;
  std::uint64_t emitted_ = 0;
};

/// Homogeneous Poisson arrivals over `generate_app` draws: the simplest
/// open-loop workload for scale sweeps.
class GeneratorArrivalStream final : public ArrivalStream {
 public:
  struct Config {
    GeneratorConfig gen;
    /// Mean inter-arrival gap (exponential), seconds.
    double mean_gap_s = 60.0;
    /// Stream ends once an arrival would land past this horizon (0 = no
    /// horizon).
    double duration_s = 0.0;
    /// Stream ends after this many applications (0 = unbounded).
    std::uint64_t max_apps = 0;
  };

  GeneratorArrivalStream(std::uint64_t seed, Config config);

  std::optional<place::Application> next() override;

 private:
  Config config_;
  Rng rng_;
  double t_s_ = 0.0;
  std::uint64_t emitted_ = 0;
};

/// §7.2 phased applications, flattened to their aggregate traffic matrix
/// (what vanilla Choreo places), arriving as a homogeneous Poisson process.
class PhasedArrivalStream final : public ArrivalStream {
 public:
  struct Config {
    PhasedConfig phased;
    double mean_gap_s = 60.0;
    double duration_s = 0.0;
    std::uint64_t max_apps = 0;
  };

  PhasedArrivalStream(std::uint64_t seed, Config config);

  std::optional<place::Application> next() override;

 private:
  Config config_;
  Rng rng_;
  double t_s_ = 0.0;
  std::uint64_t emitted_ = 0;
};

/// Burstiness modulator: wraps any stream, keeps its applications, and
/// replaces the arrival process with a Markov-modulated Poisson process
/// (MMPP) — states cycle round-robin, each with its own arrival rate and
/// exponential sojourn time, so a calm trace becomes calm/bursty episodes
/// without touching the payloads. Non-owning: `inner` must outlive the
/// modulator.
class MmppArrivalStream final : public ArrivalStream {
 public:
  struct Config {
    /// Arrival rate per state (arrivals/second). Defaults: a calm state and
    /// a 6x burst state.
    std::vector<double> rate_per_s{1.0 / 60.0, 1.0 / 10.0};
    /// Mean sojourn time per state, seconds (exponential).
    std::vector<double> mean_sojourn_s{1800.0, 300.0};
    /// Stream ends once an arrival would land past this horizon (0 = rely on
    /// the inner stream's end).
    double duration_s = 0.0;
  };

  MmppArrivalStream(ArrivalStream& inner, std::uint64_t seed, Config config);

  std::optional<place::Application> next() override;

  /// The state the modulator is currently in (for tests / introspection).
  std::size_t state() const { return state_; }

 private:
  ArrivalStream* inner_;
  Config config_;
  Rng rng_;
  double t_s_ = 0.0;
  std::size_t state_ = 0;
  double sojourn_left_s_ = 0.0;
};

}  // namespace choreo::workload

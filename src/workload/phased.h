#pragma once

#include "place/phases.h"
#include "workload/generator.h"

namespace choreo::workload {

struct PhasedConfig {
  std::size_t min_phases = 2;
  std::size_t max_phases = 4;
  GeneratorConfig gen;
};

/// Generates a §7.2-style multi-phase application: a fixed task set whose
/// traffic matrix changes per phase. Phase patterns are drawn independently
/// (e.g., an ingest star, then a shuffle, then a gather), which is what
/// makes a single aggregate placement a compromise across phases.
place::PhasedApplication generate_phased_app(Rng& rng, const PhasedConfig& config);

}  // namespace choreo::workload

#pragma once

#include <cstdint>

#include "place/app.h"
#include "util/rng.h"

namespace choreo::workload {

/// Communication patterns of the applications in the HP Cloud dataset class
/// the paper evaluates on: "Hadoop jobs, analytic database workloads,
/// storage/backup services, and scientific or numerical computations" (§1).
enum class Pattern {
  MapReduce,      ///< maps shuffle to reducers; skew configurable
  ScatterGather,  ///< coordinator fans out requests, gathers (large) replies
  Pipeline,       ///< linear chain of stages
  Star,           ///< one hub exchanges heavy traffic with every spoke
  Uniform,        ///< all-to-all with near-equal sizes (the §7.1 "relatively
                  ///< uniform bandwidth usage" case Choreo cannot help much)
};

const char* to_string(Pattern p);

struct GeneratorConfig {
  /// Pattern mix, indexed by Pattern order.
  std::vector<double> pattern_weights{0.35, 0.20, 0.15, 0.15, 0.15};
  std::size_t min_tasks = 4;
  std::size_t max_tasks = 10;
  /// Log-normal transfer sizes: exp(N(log(median_bytes), sigma)).
  double median_transfer_bytes = 600e6;
  double size_sigma = 1.0;
  /// Per-task CPU demand, uniform in [min_cpu, max_cpu] rounded to halves
  /// (§6.1: "between 0.5 and four CPU cores").
  double min_cpu = 0.5;
  double max_cpu = 4.0;
  /// MapReduce shuffle skew: 0 = perfectly uniform shuffle, 1 = heavily
  /// skewed. Drawn uniformly in [0, this] per app.
  double max_shuffle_skew = 1.0;
};

/// Draws one application with a random pattern.
place::Application generate_app(Rng& rng, const GeneratorConfig& config);

/// Draws one application with the given pattern.
place::Application generate_app(Rng& rng, Pattern pattern, const GeneratorConfig& config);

}  // namespace choreo::workload

#include "workload/stream.h"

#include <string>

#include "util/require.h"

namespace choreo::workload {

std::optional<place::Application> VectorArrivalStream::next() {
  if (pos_ >= apps_->size()) return std::nullopt;
  return (*apps_)[pos_++];
}

TraceArrivalStream::TraceArrivalStream(std::uint64_t seed, TraceConfig config)
    : config_(std::move(config)), rng_(seed) {
  CHOREO_REQUIRE(config_.duration_hours > 0.0);
  CHOREO_REQUIRE(config_.apps_per_day > 0.0);
}

std::optional<place::Application> TraceArrivalStream::next() {
  // The same arrival process HpCloudTrace materializes, advanced one
  // accepted arrival at a time.
  if (!advance_to_next_arrival(rng_, config_, t_hours_)) return std::nullopt;
  place::Application app = generate_app(rng_, config_.gen);
  // Two appends: GCC 12's -O3 -Wrestrict false-positives on the
  // operator+(const char*, string) temporary here.
  app.name += '-';
  app.name += std::to_string(emitted_++);
  app.arrival_s = t_hours_ * 3600.0;
  return app;
}

GeneratorArrivalStream::GeneratorArrivalStream(std::uint64_t seed, Config config)
    : config_(std::move(config)), rng_(seed) {
  CHOREO_REQUIRE(config_.mean_gap_s > 0.0);
}

std::optional<place::Application> GeneratorArrivalStream::next() {
  if (config_.max_apps > 0 && emitted_ >= config_.max_apps) return std::nullopt;
  t_s_ += rng_.exponential(config_.mean_gap_s);
  if (config_.duration_s > 0.0 && t_s_ >= config_.duration_s) return std::nullopt;
  place::Application app = generate_app(rng_, config_.gen);
  app.name += '-';
  app.name += std::to_string(emitted_++);
  app.arrival_s = t_s_;
  return app;
}

PhasedArrivalStream::PhasedArrivalStream(std::uint64_t seed, Config config)
    : config_(std::move(config)), rng_(seed) {
  CHOREO_REQUIRE(config_.mean_gap_s > 0.0);
}

std::optional<place::Application> PhasedArrivalStream::next() {
  if (config_.max_apps > 0 && emitted_ >= config_.max_apps) return std::nullopt;
  t_s_ += rng_.exponential(config_.mean_gap_s);
  if (config_.duration_s > 0.0 && t_s_ >= config_.duration_s) return std::nullopt;
  const place::PhasedApplication phased = generate_phased_app(rng_, config_.phased);
  place::Application app = phased.aggregate();
  app.name = "phased-";
  app.name += std::to_string(emitted_++);
  app.arrival_s = t_s_;
  return app;
}

MmppArrivalStream::MmppArrivalStream(ArrivalStream& inner, std::uint64_t seed,
                                     Config config)
    : inner_(&inner), config_(std::move(config)), rng_(seed) {
  CHOREO_REQUIRE(!config_.rate_per_s.empty());
  CHOREO_REQUIRE(config_.rate_per_s.size() == config_.mean_sojourn_s.size());
  for (double r : config_.rate_per_s) CHOREO_REQUIRE(r > 0.0);
  for (double s : config_.mean_sojourn_s) CHOREO_REQUIRE(s > 0.0);
  sojourn_left_s_ = rng_.exponential(config_.mean_sojourn_s[state_]);
}

std::optional<place::Application> MmppArrivalStream::next() {
  // Race the next arrival of the current state's Poisson process against the
  // remaining sojourn; on sojourn expiry, rotate to the next state. The
  // exponential's memorylessness makes redrawing the arrival gap after a
  // state switch exact.
  while (true) {
    const double gap = rng_.exponential(1.0 / config_.rate_per_s[state_]);
    if (gap < sojourn_left_s_) {
      t_s_ += gap;
      sojourn_left_s_ -= gap;
      break;
    }
    t_s_ += sojourn_left_s_;
    state_ = (state_ + 1) % config_.rate_per_s.size();
    sojourn_left_s_ = rng_.exponential(config_.mean_sojourn_s[state_]);
  }
  if (config_.duration_s > 0.0 && t_s_ >= config_.duration_s) return std::nullopt;
  std::optional<place::Application> app = inner_->next();
  if (!app) return std::nullopt;
  app->arrival_s = t_s_;
  return app;
}

}  // namespace choreo::workload

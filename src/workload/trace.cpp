#include "workload/trace.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"
#include "util/stats.h"

namespace choreo::workload {
namespace {
constexpr double kPi = 3.14159265358979323846;
}

// Arrivals: non-homogeneous Poisson via thinning, with a diurnal rate
// lambda(t) = base * (1 + A*sin(2*pi*(h - 8)/24)).
bool advance_to_next_arrival(Rng& rng, const TraceConfig& config, double& t_hours) {
  const double base_per_hour = config.apps_per_day / 24.0;
  const double lambda_max = base_per_hour * (1.0 + config.diurnal_amplitude);
  while (true) {
    t_hours += rng.exponential(1.0 / lambda_max);
    if (t_hours >= config.duration_hours) return false;
    const double hour_of_day = std::fmod(t_hours, 24.0);
    const double lambda = base_per_hour *
                          (1.0 + config.diurnal_amplitude *
                                     std::sin(2.0 * kPi * (hour_of_day - 8.0) / 24.0));
    if (rng.chance(std::min(1.0, lambda / lambda_max))) return true;
  }
}

HpCloudTrace::HpCloudTrace(std::uint64_t seed, TraceConfig config)
    : config_(std::move(config)) {
  CHOREO_REQUIRE(config_.duration_hours > 0.0);
  CHOREO_REQUIRE(config_.apps_per_day > 0.0);
  Rng rng(seed);

  double t_hours = 0.0;
  while (advance_to_next_arrival(rng, config_, t_hours)) {
    TraceApp entry;
    entry.app = generate_app(rng, config_.gen);
    entry.start_s = t_hours * 3600.0;
    entry.app.arrival_s = entry.start_s;

    // Hourly byte series for the rest of the trace window.
    const auto hours_left = static_cast<std::size_t>(config_.duration_hours - t_hours);
    if (hours_left >= 2) {
      const double base_bytes = entry.app.traffic_bytes.total();
      const double amp = rng.uniform(0.2, config_.series_diurnal_amplitude_max);
      const double phase = rng.uniform(0.0, 24.0);
      double ar = 0.0;
      entry.hourly_bytes.reserve(hours_left);
      for (std::size_t h = 0; h < hours_left; ++h) {
        const double hod = std::fmod(t_hours + static_cast<double>(h), 24.0);
        const double diurnal = 1.0 + amp * std::sin(2.0 * kPi * (hod - phase) / 24.0);
        ar = config_.series_ar1_rho * ar +
             rng.normal(0.0, config_.series_noise_sigma);
        entry.hourly_bytes.push_back(base_bytes * diurnal * std::exp(ar));
      }
    }
    apps_.push_back(std::move(entry));
  }
  CHOREO_ASSERT_MSG(apps_.size() >= 8, "trace too short to sample experiments from");
}

std::vector<place::Application> HpCloudTrace::sample_batch(Rng& rng,
                                                           std::size_t count) const {
  CHOREO_REQUIRE(count >= 1 && count <= apps_.size());
  std::vector<place::Application> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const auto idx = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(apps_.size()) - 1));
    place::Application app = apps_[idx].app;
    app.arrival_s = 0.0;
    out.push_back(std::move(app));
  }
  return out;
}

std::vector<place::Application> HpCloudTrace::sample_sequence(Rng& rng, std::size_t count,
                                                              double mean_gap_s) const {
  CHOREO_REQUIRE(count >= 1 && count <= apps_.size());
  const auto start = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(apps_.size() - count)));
  std::vector<place::Application> out;
  out.reserve(count);
  double raw_gap_sum = 0.0;
  for (std::size_t k = 0; k + 1 < count; ++k) {
    raw_gap_sum += apps_[start + k + 1].start_s - apps_[start + k].start_s;
  }
  const double scale = (mean_gap_s > 0.0 && raw_gap_sum > 0.0 && count > 1)
                           ? mean_gap_s * static_cast<double>(count - 1) / raw_gap_sum
                           : 1.0;
  for (std::size_t k = 0; k < count; ++k) {
    place::Application app = apps_[start + k].app;
    app.arrival_s = (apps_[start + k].start_s - apps_[start].start_s) * scale;
    out.push_back(std::move(app));
  }
  return out;
}

namespace {

PredictorScore score_from_errors(std::vector<double> errors) {
  PredictorScore s;
  s.samples = errors.size();
  if (errors.empty()) return s;
  s.mean_rel_error = mean(errors);
  s.median_rel_error = median(std::move(errors));
  return s;
}

}  // namespace

PredictorScore score_prev_hour(const std::vector<double>& hourly) {
  std::vector<double> errors;
  for (std::size_t t = 1; t < hourly.size(); ++t) {
    if (hourly[t] <= 0.0) continue;
    errors.push_back(std::abs(hourly[t - 1] - hourly[t]) / hourly[t]);
  }
  return score_from_errors(std::move(errors));
}

PredictorScore score_time_of_day(const std::vector<double>& hourly,
                                 std::size_t hours_per_day) {
  CHOREO_REQUIRE(hours_per_day >= 1);
  std::vector<double> errors;
  for (std::size_t t = hours_per_day; t < hourly.size(); ++t) {
    if (hourly[t] <= 0.0) continue;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t back = hours_per_day; back <= t; back += hours_per_day) {
      sum += hourly[t - back];
      ++n;
    }
    const double prediction = sum / static_cast<double>(n);
    errors.push_back(std::abs(prediction - hourly[t]) / hourly[t]);
  }
  return score_from_errors(std::move(errors));
}

PredictorScore score_blend(const std::vector<double>& hourly, std::size_t hours_per_day) {
  CHOREO_REQUIRE(hours_per_day >= 1);
  std::vector<double> errors;
  for (std::size_t t = hours_per_day; t < hourly.size(); ++t) {
    if (hourly[t] <= 0.0) continue;
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t back = hours_per_day; back <= t; back += hours_per_day) {
      sum += hourly[t - back];
      ++n;
    }
    const double tod = sum / static_cast<double>(n);
    const double prediction = 0.5 * (hourly[t - 1] + tod);
    errors.push_back(std::abs(prediction - hourly[t]) / hourly[t]);
  }
  return score_from_errors(std::move(errors));
}

}  // namespace choreo::workload

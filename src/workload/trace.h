#pragma once

#include <cstdint>
#include <vector>

#include "workload/generator.h"

namespace choreo::workload {

/// One application observed in the (synthetic) HP Cloud trace: its traffic
/// matrix, observed start time, and an hourly byte series for long-running
/// services (used by the §2.1 predictability analysis).
struct TraceApp {
  place::Application app;
  double start_s = 0.0;
  /// Bytes transferred per hour over the trace, with diurnal structure and
  /// AR(1) noise — "data from the previous hour and the time-of-day are good
  /// predictors of the number of bytes transferred in the next hour".
  std::vector<double> hourly_bytes;
};

struct TraceConfig {
  double duration_hours = 21.0 * 24.0;  ///< "three weeks of network data"
  double apps_per_day = 48.0;           ///< arrival rate, diurnally modulated
  double diurnal_amplitude = 0.5;       ///< arrival-rate day/night swing
  GeneratorConfig gen;
  /// Hourly-series shape.
  double series_diurnal_amplitude_max = 0.7;
  double series_ar1_rho = 0.7;
  double series_noise_sigma = 0.2;
};

/// Advances `t_hours` through the §6.1 arrival process — a diurnally
/// modulated Poisson process sampled by thinning — to the next accepted
/// arrival. Returns false once the trace window is exhausted. Shared by
/// HpCloudTrace (which materializes the trace) and TraceArrivalStream
/// (which streams it), so the two arrival models cannot drift apart.
bool advance_to_next_arrival(Rng& rng, const TraceConfig& config, double& t_hours);

/// Synthetic stand-in for the HP Cloud dataset (§6.1): applications with
/// observed start times over three weeks, real-looking traffic matrices and
/// per-hour transfer volumes. The paper's dataset is proprietary; this
/// generator exercises the same code paths (profiling, prediction, batch
/// and sequential placement) with the statistics the paper describes.
class HpCloudTrace {
 public:
  HpCloudTrace(std::uint64_t seed, TraceConfig config);

  const std::vector<TraceApp>& apps() const { return apps_; }
  const TraceConfig& config() const { return config_; }

  /// §6.2: picks `count` random applications and returns them with arrival
  /// times zeroed (they are combined and placed all at once).
  std::vector<place::Application> sample_batch(Rng& rng, std::size_t count) const;

  /// §6.3: picks `count` applications *consecutive in observed start time*
  /// and returns them ordered by arrival, shifted so the first arrives at 0.
  /// `mean_gap_s`, when positive, rescales inter-arrival gaps to that mean
  /// so that application lifetimes and arrivals overlap the way the paper's
  /// sequences do.
  std::vector<place::Application> sample_sequence(Rng& rng, std::size_t count,
                                                  double mean_gap_s) const;

 private:
  TraceConfig config_;
  std::vector<TraceApp> apps_;
};

/// Accuracy of a next-hour byte predictor over a series: mean/median of
/// |prediction - actual| / actual.
struct PredictorScore {
  double mean_rel_error = 0.0;
  double median_rel_error = 0.0;
  std::size_t samples = 0;
};

/// Predict h[t] = h[t-1].
PredictorScore score_prev_hour(const std::vector<double>& hourly);
/// Predict h[t] = mean of h at the same time-of-day on previous days.
PredictorScore score_time_of_day(const std::vector<double>& hourly,
                                 std::size_t hours_per_day = 24);
/// Predict h[t] = (prev-hour + time-of-day)/2 — the blended predictor.
PredictorScore score_blend(const std::vector<double>& hourly,
                           std::size_t hours_per_day = 24);

}  // namespace choreo::workload

#include "core/session.h"

#include "util/require.h"

namespace choreo::core {

const char* to_string(SessionEventKind kind) {
  switch (kind) {
    case SessionEventKind::Arrival:
      return "arrival";
    case SessionEventKind::Deferred:
      return "deferred";
    case SessionEventKind::Rejected:
      return "rejected";
    case SessionEventKind::Placed:
      return "placed";
    case SessionEventKind::Departure:
      return "departure";
    case SessionEventKind::Reevaluation:
      return "reevaluation";
  }
  return "unknown";
}

std::string SessionLog::detail(const SessionEvent& e) const {
  if (e.kind == SessionEventKind::Reevaluation) {
    return e.adopted ? "migrated " + std::to_string(e.tasks_migrated) + " tasks"
                     : "kept placements";
  }
  CHOREO_REQUIRE_MSG(e.app < apps.size(),
                     "event payload does not index this log's outcomes");
  return apps[e.app].name;
}

}  // namespace choreo::core

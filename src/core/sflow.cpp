#include "core/sflow.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace choreo::core {

std::vector<FlowRecord> sflow_sample(const std::vector<ObservedTransfer>& transfers,
                                     const SflowConfig& config, Rng& rng) {
  CHOREO_REQUIRE(config.sampling_rate >= 1);
  CHOREO_REQUIRE(config.packet_bytes >= 1);
  std::vector<FlowRecord> records;
  const double p = 1.0 / static_cast<double>(config.sampling_rate);
  const double scaled_bytes =
      static_cast<double>(config.sampling_rate) * config.packet_bytes;

  for (const ObservedTransfer& tr : transfers) {
    CHOREO_REQUIRE(tr.bytes >= 0.0);
    CHOREO_REQUIRE(tr.end_s >= tr.start_s);
    const auto packets = static_cast<std::uint64_t>(
        std::ceil(tr.bytes / static_cast<double>(config.packet_bytes)));
    if (packets == 0) continue;
    // Binomial thinning. For the large packet counts of bulk transfers a
    // normal approximation is exact enough and O(1); small flows use exact
    // Bernoulli draws so the blind-spot behaviour is faithful.
    std::uint64_t sampled = 0;
    if (packets > 10000) {
      const double mean_n = static_cast<double>(packets) * p;
      const double sd = std::sqrt(mean_n * (1.0 - p));
      const double draw = std::max(0.0, rng.normal(mean_n, sd));
      sampled = static_cast<std::uint64_t>(std::llround(draw));
    } else {
      for (std::uint64_t k = 0; k < packets; ++k) {
        if (rng.chance(p)) ++sampled;
      }
    }
    for (std::uint64_t s = 0; s < sampled; ++s) {
      FlowRecord rec;
      rec.src_task = tr.src_task;
      rec.dst_task = tr.dst_task;
      rec.bytes = scaled_bytes;
      rec.timestamp_s = tr.start_s + rng.uniform(0.0, std::max(1e-9, tr.end_s - tr.start_s));
      records.push_back(rec);
    }
  }
  // Collectors deliver records roughly in time order.
  std::sort(records.begin(), records.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.timestamp_s < b.timestamp_s;
            });
  return records;
}

Profiler profile_from_sflow(std::size_t task_count,
                            const std::vector<ObservedTransfer>& transfers,
                            const SflowConfig& config, Rng& rng) {
  Profiler profiler(task_count);
  profiler.observe_all(sflow_sample(transfers, config, rng));
  return profiler;
}

}  // namespace choreo::core

#pragma once

#include <vector>

#include "core/session.h"

namespace choreo::core {

/// Single-tenant session driver: the historical entry point the §6 benches
/// and examples use. Since the control-plane refactor it is a thin facade
/// over the discrete-event core::SessionRuntime (see core/runtime.h) — the
/// materialized workload vector is adapted to a workload::ArrivalStream and
/// replayed through the typed event queue, producing a SessionLog
/// bit-identical to the original hand-rolled merge loop (pinned by
/// test_runtime_differential against run_session_reference).
class Controller {
 public:
  Controller(cloud::Cloud& cloud, std::vector<cloud::VmId> vms, ControllerConfig config);

  /// Runs the session until every application has been placed and has
  /// (by estimate) finished. Applications must be sorted by arrival_s.
  SessionLog run(const std::vector<place::Application>& apps);

 private:
  cloud::Cloud& cloud_;
  std::vector<cloud::VmId> vms_;
  ControllerConfig config_;
};

}  // namespace choreo::core

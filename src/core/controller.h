#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "core/choreo.h"

namespace choreo::core {

/// Drives a whole tenant session the way §2 describes Choreo operating in
/// production: applications arrive over time and are placed on arrival
/// (re-measuring first), finished applications release their VMs, and
/// "every T minutes, Choreo re-evaluates its placement of the existing
/// applications, and migrates tasks if necessary" (§2.4).
///
/// Departures are driven by the analytic completion estimate, which is the
/// information a controller actually has before the run finishes.
struct ControllerConfig {
  ChoreoConfig choreo;
  /// Applications that do not fit at arrival wait in a FIFO queue and are
  /// retried at each departure. When false, an arrival that does not fit is
  /// rejected deterministically: a "rejected" event is logged, the app stays
  /// unplaced (placed_s < 0), and the session continues.
  bool queue_when_full = true;
};

struct SessionEvent {
  double time_s = 0.0;
  std::string kind;    ///< "arrival", "deferred", "rejected", "placed",
                       ///< "departure", "reevaluation"
  std::string detail;
};

struct AppOutcome {
  std::string name;
  double arrival_s = 0.0;
  double placed_s = -1.0;   ///< may be later than arrival if queued; stays
                            ///< negative when the app was rejected
  double finished_s = -1.0;
  bool rejected = false;    ///< did not fit and queue_when_full was false
  place::Placement placement;
};

struct SessionLog {
  std::vector<SessionEvent> events;
  std::vector<AppOutcome> apps;
  std::size_t reevaluations = 0;
  std::size_t reevaluations_adopted = 0;
  std::size_t tasks_migrated = 0;
  std::size_t rejected = 0;  ///< arrivals rejected (queue_when_full = false)
  /// Sum over applications of (finished - arrival): the §6.3 metric.
  double total_runtime_s = 0.0;
  /// Measurement-plane cost of the whole session: modeled wall-clock and
  /// probe count summed over every measurement cycle (arrivals and
  /// re-evaluations). Incremental refresh shrinks both.
  double measurement_wall_s = 0.0;
  std::size_t pairs_probed = 0;
};

class Controller {
 public:
  Controller(cloud::Cloud& cloud, std::vector<cloud::VmId> vms, ControllerConfig config);

  /// Runs the session until every application has been placed and has
  /// (by estimate) finished. Applications must be sorted by arrival_s.
  SessionLog run(const std::vector<place::Application>& apps);

 private:
  cloud::Cloud& cloud_;
  std::vector<cloud::VmId> vms_;
  ControllerConfig config_;
};

}  // namespace choreo::core

#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/runtime.h"
#include "obs/observer.h"

namespace choreo::core {

/// Serializes the one piece of cross-tenant state a multi-tenant session
/// shares — the cloud's monotonic epoch counter — so that tenants running
/// on many threads draw exactly the epoch values the single-threaded
/// `MultiTenantSession` interleave would have handed them.
///
/// Background: in `MultiTenantSession::run` the only coupling between
/// tenants is `Cloud::next_epoch()` (measurement results are pure functions
/// of (seed, epoch, src, dst) — pinned by test_determinism). The oracle
/// advances the tenant with the earliest live event, ties to the lowest
/// tenant index, so its global draw sequence is the per-tenant draw
/// sequences merged by the lexicographic key (draw time, tenant index).
/// The arbiter reproduces that merge without a global clock: a tenant that
/// reaches a draw blocks with its exact key, every tenant that is still
/// running advertises a conservative lower bound on its own next draw key,
/// and the pending draw with the smallest key is granted the next counter
/// value as soon as every other tenant provably cannot draw earlier. This
/// is conservative (lookahead-based) parallel discrete-event simulation:
/// thread timing can only delay a grant, never reorder one, so the epoch
/// sequence — and with it every downstream placement and log entry — is
/// bit-identical for any shard count and any thread count.
class EpochArbiter {
 public:
  /// `draw` produces the next shared counter value; it is only ever invoked
  /// under the arbiter's lock, in grant order.
  EpochArbiter(std::size_t tenants, std::function<std::uint64_t()> draw);

  /// Raises tenant `i`'s advertised bound: no draw by `i` will happen at a
  /// key earlier than (bound, i). Bounds must be non-decreasing.
  void set_bound(std::size_t tenant, double bound);

  /// Tenant `i`'s next step draws at `time_s`. `post_bound` is the caller's
  /// lower bound on the tenant's *following* draw (its advertised bound the
  /// moment this one is granted). Returns the epoch immediately when the
  /// grant condition already holds; otherwise registers the request —
  /// collect the grant later via poll().
  std::optional<std::uint64_t> request(std::size_t tenant, double time_s,
                                       double post_bound);

  /// Collects a previously requested grant, if it has fired.
  std::optional<std::uint64_t> poll(std::size_t tenant);

  /// Tenant `i` finished its session and will never draw again.
  void mark_done(std::size_t tenant);

  /// Fails every waiter (a worker hit an exception); wait_change returns.
  void abort();
  bool aborted() const;

  /// Blocks until the arbiter's state version differs from `seen` (a grant
  /// or completion happened), every tenant is done, or abort() was called.
  /// Returns the current version.
  std::uint64_t wait_change(std::uint64_t seen);
  std::uint64_t version() const;

  bool all_done() const;
  std::uint64_t grants() const;

 private:
  enum class State : std::uint8_t { Running, Waiting, Granted, Done };
  struct Slot {
    State state = State::Running;
    /// Running/Granted: no future draw earlier than (bound, index).
    double bound = -std::numeric_limits<double>::infinity();
    /// Waiting: the exact key time of the pending draw.
    double request_time = 0.0;
    double post_bound = 0.0;
    std::uint64_t epoch = 0;
  };

  /// Grants every currently safe request (cascading), under lock.
  void try_grants_locked();
  void bump_locked();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<Slot> slots_;
  std::function<std::uint64_t()> draw_;
  std::size_t done_count_ = 0;
  std::uint64_t version_ = 0;
  std::uint64_t grants_ = 0;
  bool aborted_ = false;
};

/// Options for the sharded control plane.
struct ShardedOptions {
  /// Tenant partitions, each owning its tenants' runtimes and event queues.
  /// A shard is the unit of work one thread processes at a time (tenants
  /// are assigned round-robin for balance). 0 = one shard per thread.
  /// Shard count never affects output, only scheduling granularity.
  std::size_t shards = 0;
  /// Worker threads. 1 runs the whole schedule inline on the calling
  /// thread (no std::thread is spawned). Thread count never affects output.
  unsigned threads = 1;
  bool record_events = true;
  bool record_outcomes = true;
  /// Scheduler-level observability: epoch grants, worker occupancy, and
  /// arbiter waits land here. Occupancy/wait metrics describe one
  /// particular execution (they vary with thread timing) so their names
  /// carry the `wall` token — the marker determinism comparisons exclude.
  /// Per-tenant plane metrics flow separately via each
  /// TenantSpec.config.choreo.obs.
  obs::Observer obs;
};

/// Multi-threaded drop-in for `MultiTenantSession`: the same tenants on
/// disjoint VM slices of one shared cloud, partitioned across K shards
/// driven by a worker pool, producing a `MultiTenantLog` that is
/// bit-identical to the single-threaded oracle for every (shards, threads)
/// combination — events, outcomes, placements, and accounting doubles
/// (pinned by test_sharded_differential).
///
/// Execution model:
///   * Phase 0 (parallel, barrier at the end): every tenant's initial
///     measurement sweep runs concurrently — their epoch values are
///     pre-drawn in tenant order, exactly the oracle's start() sequence.
///     No event can be processed before the sweep epoch barrier because a
///     session's first event is always a measurement refresh.
///   * Event phase: worker threads claim shards and step their tenants'
///     runtimes back-to-back. Steps that touch only tenant-local state
///     (arrivals, departures, retries) run freely in parallel; steps that
///     draw a measurement epoch (MeasureRefresh, ReevalTick) are sequenced
///     by the `EpochArbiter` so the shared counter is observed in the
///     oracle's deterministic (time, tenant) order. A tenant blocked on a
///     draw parks; its shard moves on to its other tenants.
///   * Merge: per-tenant logs are reduced to the aggregate with the same
///     deterministic k-way merge the oracle uses.
///
/// The expensive work — packet-train rounds, ground-truth view rebuilds,
/// placement search — happens after a draw is granted and overlaps across
/// tenants thanks to the arbiter's lookahead, which is what turns hundreds
/// of tenants into near-linear thread scaling (bench/tbl_session_scale).
class ShardedSession {
 public:
  ShardedSession(cloud::Cloud& cloud, std::vector<TenantSpec> tenants,
                 ShardedOptions options = {});
  ~ShardedSession();  // out-of-line: TenantCell/Shard are incomplete here

  /// Runs every tenant session to completion. Call once.
  MultiTenantLog run();

  /// Per-tenant runtime stats, valid after run(). Deterministic: identical
  /// to the oracle's for the same spec.
  const std::vector<SessionRuntime::Stats>& tenant_stats() const { return stats_; }

  /// Scheduler introspection, valid after run(). `epoch_grants` is
  /// deterministic (one per measurement cycle); the rest describe one
  /// particular execution and vary with thread timing.
  struct Stats {
    std::size_t shards = 0;
    unsigned threads = 0;
    std::uint64_t epoch_grants = 0;  ///< epoch draws sequenced by the arbiter
    std::uint64_t shard_passes = 0;  ///< shard claims that made progress
    std::uint64_t idle_waits = 0;    ///< times a worker slept awaiting a grant
  };
  const Stats& stats() const { return run_stats_; }

 private:
  struct TenantCell;
  struct Shard;

  bool run_shard_pass(Shard& shard);
  void run_tenant(TenantCell& cell);
  double running_bound(const TenantCell& cell) const;
  double post_draw_bound(const TenantCell& cell,
                         const SessionRuntime::PendingEvent& ev) const;

  cloud::Cloud& cloud_;
  std::vector<TenantSpec> tenants_;
  ShardedOptions opts_;
  std::vector<SessionRuntime::Stats> stats_;
  Stats run_stats_;

  // Live only during run().
  std::vector<std::unique_ptr<TenantCell>> cells_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<EpochArbiter> arbiter_;
  bool ran_ = false;
};

}  // namespace choreo::core

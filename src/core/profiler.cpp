#include "core/profiler.h"

#include <cmath>

#include "util/require.h"

namespace choreo::core {

Profiler::Profiler(std::size_t task_count) : matrix_(task_count, task_count, 0.0) {
  CHOREO_REQUIRE(task_count >= 1);
}

void Profiler::observe(const FlowRecord& record) {
  CHOREO_REQUIRE(record.src_task < matrix_.rows());
  CHOREO_REQUIRE(record.dst_task < matrix_.cols());
  CHOREO_REQUIRE(record.src_task != record.dst_task);
  CHOREO_REQUIRE(record.bytes >= 0.0);
  CHOREO_REQUIRE(record.timestamp_s >= 0.0);
  matrix_(record.src_task, record.dst_task) += record.bytes;
  const auto hour = static_cast<std::size_t>(record.timestamp_s / 3600.0);
  if (hourly_.size() <= hour) hourly_.resize(hour + 1, 0.0);
  hourly_[hour] += record.bytes;
  ++records_;
}

void Profiler::observe_all(const std::vector<FlowRecord>& records) {
  for (const FlowRecord& r : records) observe(r);
}

place::Application Profiler::to_application(std::vector<double> cpu_demand,
                                            std::string name) const {
  CHOREO_REQUIRE(cpu_demand.size() == matrix_.rows());
  place::Application app;
  app.name = std::move(name);
  app.cpu_demand = std::move(cpu_demand);
  app.traffic_bytes = matrix_;
  app.validate();
  return app;
}

std::vector<double> Profiler::hourly_totals() const { return hourly_; }

double Profiler::predict_next_hour_bytes() const {
  if (hourly_.empty()) return 0.0;
  const double prev = hourly_.back();
  constexpr std::size_t kHoursPerDay = 24;
  if (hourly_.size() <= kHoursPerDay) return prev;
  // Time-of-day component: same hour on previous days.
  const std::size_t next_index = hourly_.size();
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t back = kHoursPerDay; back <= next_index; back += kHoursPerDay) {
    sum += hourly_[next_index - back];
    ++n;
  }
  const double tod = sum / static_cast<double>(n);
  return 0.5 * (prev + tod);
}

}  // namespace choreo::core

#include "core/choreo.h"

#include <algorithm>

#include "agent/plane.h"
#include "measure/packet_train.h"
#include "place/rate_model.h"
#include "util/require.h"

namespace choreo::core {

Choreo::Choreo(cloud::Cloud& cloud, std::vector<cloud::VmId> vms, ChoreoConfig config)
    : cloud_(cloud), vms_(std::move(vms)), config_(std::move(config)),
      greedy_(config_.rate_model), policy_(config_.forecast) {
  CHOREO_REQUIRE(vms_.size() >= 2);
  const obs::Observer& o = config_.obs;
  obs_.measure_cycles = o.counter("measure.cycles");
  obs_.pairs_probed = o.counter("measure.pairs_probed");
  obs_.rounds = o.counter("measure.rounds");
  obs_.refresh_never = o.counter("measure.refresh_never");
  obs_.refresh_stale = o.counter("measure.refresh_stale");
  obs_.refresh_volatile = o.counter("measure.refresh_volatile");
  obs_.pairs_predicted = o.counter("measure.pairs_predicted");
  obs_.apps_placed = o.counter("place.apps");
  obs_.candidates_walked = o.counter("place.candidates_walked");
  obs_.txn_ops = o.counter("place.txn_ops");
  obs_.reevals = o.counter("place.reevals");
  obs_.tasks_migrated = o.counter("place.tasks_migrated");
}

Choreo::~Choreo() = default;

void Choreo::scrape_engine_counters() {
  if (!state_) return;
  const place::PlacementEngine::Counters& c = state_->engine().counters();
  CHOREO_OBS_ADD(obs_.candidates_walked, config_.obs,
                 c.candidates_walked - engine_seen_.candidates_walked);
  CHOREO_OBS_ADD(obs_.txn_ops, config_.obs, c.txn_ops - engine_seen_.txn_ops);
  engine_seen_ = c;
}

double Choreo::measure_network(std::uint64_t epoch) {
  CHOREO_OBS_SPAN(span, config_.obs, "measure.cycle", "measure");
  place::ClusterView view;
  last_measure_ = MeasureReport{};
  if (config_.use_measured_view && config_.agents.enabled) {
    // Distributed path: one agent-plane cycle replaces the in-process
    // probe/observe/apply sequence. The plane owns its own ViewCache and
    // PredictivePolicy (fed by whatever reports survive the transport).
    if (!plane_) {
      plane_ = std::make_unique<agent::AgentPlane>(cloud_, vms_, config_.plan,
                                                   config_.refresh, config_.forecast,
                                                   config_.agents, config_.rate_model);
      plane_->set_observer(config_.obs);
    }
    if (!config_.incremental_refresh) plane_->reset_cache();
    agent::ClusterAgent::CycleReport rep = plane_->run_cycle(epoch);
    view = std::move(rep.view);
    last_measure_.wall_time_s = rep.wall_time_s;
    last_measure_.pairs_probed = rep.pairs_probed;
    last_measure_.rounds = rep.rounds;
    last_measure_.incremental = rep.incremental;
    last_measure_.never_measured = rep.never_measured;
    last_measure_.stale = rep.stale;
    last_measure_.volatile_pairs = rep.volatile_pairs;
    last_measure_.predictable_pairs = rep.predictable_pairs;
    last_measure_.unpredictable_pairs = rep.unpredictable_pairs;
    last_measure_.changepoint_pairs = rep.changepoint_pairs;
    last_measure_.predicted_pairs = rep.predicted_pairs;
    last_measure_.forecast_full_sweep = rep.forecast_full_sweep;
    last_measure_.agent_pairs_planned = rep.pairs_planned;
    last_measure_.agent_pairs_missing = rep.pairs_missing;
    last_measure_.agent_reports = rep.reports_integrated;
  } else if (config_.use_measured_view) {
    if (!config_.incremental_refresh) {
      // Full sweep every cycle: forget everything, then refresh.
      cache_ = measure::ViewCache(vms_.size());
    }
    const std::size_t known_before = cache_.measured_pairs();
    // Plan through the forecast plane: with config.forecast disabled this is
    // exactly the fixed policy's plan (same pairs, same order — the whole
    // cycle is then bit-identical to pre-forecast behaviour); enabled, the
    // probe budget goes to the pairs the best predictor is worst at.
    cache_.resize(vms_.size());
    measure::RefreshPlan probe_plan =
        policy_.plan_refresh(cache_, epoch, config_.refresh);
    measure::RefreshResult refreshed = measure::refresh_cluster_view_with_plan(
        cloud_, vms_, config_.plan, epoch, cache_, std::move(probe_plan));
    if (config_.forecast.enabled) {
      // Score the predictors against every fresh probe result (the cache
      // holds this cycle's estimates), then rewrite unprobed pairs with
      // forecasts and apply the uncertainty discount.
      for (const measure::ProbePair& p : refreshed.plan.pairs) {
        policy_.observe(p.src, p.dst, cache_.at(p.src, p.dst).rate_bps, epoch);
      }
      policy_.apply_to_view(refreshed.view, cache_, refreshed.plan, epoch);
    }
    view = std::move(refreshed.view);
    last_measure_.wall_time_s = refreshed.wall_time_s;
    last_measure_.pairs_probed = refreshed.pairs_probed;
    last_measure_.rounds = refreshed.rounds;
    last_measure_.incremental = known_before > 0;
    last_measure_.never_measured = refreshed.plan.never_measured;
    last_measure_.stale = refreshed.plan.stale;
    last_measure_.volatile_pairs = refreshed.plan.volatile_pairs;
    const forecast::PredictivePolicy::PlanStats& fs = policy_.last_plan();
    last_measure_.predictable_pairs = fs.predictable;
    last_measure_.unpredictable_pairs = fs.unpredictable + fs.warmup;
    last_measure_.changepoint_pairs = fs.changepoints;
    last_measure_.predicted_pairs = fs.predicted;
    last_measure_.forecast_full_sweep = fs.full_sweep;
  } else {
    view = measure::true_cluster_view(cloud_, vms_, epoch);
  }

  // Preserve existing commitments. After the first cycle the fleet is fixed,
  // so the new view is swapped into the existing state in place: the
  // PlacementEngine rebuilds its static rate indexes and keeps the residual
  // occupancy (CPU, transfer counts), instead of reconstructing the state
  // and replaying every running application on each arrival/re-evaluation.
  if (state_ && state_->machine_count() == view.machine_count()) {
    state_->update_view(std::move(view));
  } else {
    auto fresh = std::make_unique<place::ClusterState>(std::move(view));
    for (const auto& [handle, entry] : running_) {
      fresh->commit(entry.app, entry.placement);
    }
    state_ = std::move(fresh);
    // Fresh state means a fresh engine whose counters restart at zero;
    // re-baseline so the next scrape's delta doesn't wrap.
    engine_seen_ = state_->engine().counters();
  }
  measured_ = true;

  CHOREO_OBS_INC(obs_.measure_cycles, config_.obs);
  CHOREO_OBS_ADD(obs_.pairs_probed, config_.obs, last_measure_.pairs_probed);
  CHOREO_OBS_ADD(obs_.rounds, config_.obs, last_measure_.rounds);
  CHOREO_OBS_ADD(obs_.refresh_never, config_.obs, last_measure_.never_measured);
  CHOREO_OBS_ADD(obs_.refresh_stale, config_.obs, last_measure_.stale);
  CHOREO_OBS_ADD(obs_.refresh_volatile, config_.obs, last_measure_.volatile_pairs);
  CHOREO_OBS_ADD(obs_.pairs_predicted, config_.obs, last_measure_.predicted_pairs);
  span.arg("pairs_probed", static_cast<double>(last_measure_.pairs_probed));
  span.arg("rounds", static_cast<double>(last_measure_.rounds));
  span.arg("incremental", last_measure_.incremental ? 1.0 : 0.0);
  return last_measure_.wall_time_s;
}

const place::ClusterView& Choreo::view() const {
  CHOREO_REQUIRE_MSG(measured_, "call measure_network() first");
  return state_->view();
}

const place::ClusterState& Choreo::state() const {
  CHOREO_REQUIRE_MSG(measured_, "call measure_network() first");
  return *state_;
}

Choreo::AppHandle Choreo::place_application(const place::Application& app) {
  return place_application(app, greedy_);
}

Choreo::AppHandle Choreo::place_application(const place::Application& app,
                                            place::Placer& placer) {
  CHOREO_REQUIRE_MSG(measured_, "call measure_network() first");
  CHOREO_OBS_SPAN(span, config_.obs, "place.app", "place");
  span.arg("tasks", static_cast<double>(app.task_count()));
  const place::Placement placement = placer.place(app, *state_);
  state_->commit(app, placement);
  CHOREO_OBS_INC(obs_.apps_placed, config_.obs);
  scrape_engine_counters();
  const AppHandle handle = next_handle_++;
  running_.emplace(handle, RunningApp{app, placement});
  return handle;
}

Choreo::AppHandle Choreo::adopt_placement(const place::Application& app,
                                          const place::Placement& placement) {
  CHOREO_REQUIRE_MSG(measured_, "call measure_network() first");
  CHOREO_REQUIRE_MSG(placement.machine_of_task.size() == app.task_count(),
                     "placement does not cover the application");
  state_->commit(app, placement);
  const AppHandle handle = next_handle_++;
  running_.emplace(handle, RunningApp{app, placement});
  return handle;
}

void Choreo::remove_application(AppHandle handle) {
  const auto it = running_.find(handle);
  CHOREO_REQUIRE_MSG(it != running_.end(), "unknown application handle");
  state_->release(it->second.app, it->second.placement);
  running_.erase(it);
}

const place::Placement& Choreo::placement_of(AppHandle handle) const {
  const auto it = running_.find(handle);
  CHOREO_REQUIRE_MSG(it != running_.end(), "unknown application handle");
  return it->second.placement;
}

double Choreo::estimated_total_completion(
    const std::vector<std::pair<const place::Application*, const place::Placement*>>& plan)
    const {
  // Sum of per-application analytic completion times: the §6.3 metric
  // ("determine the total running time of each application, and compare the
  // sum of these running times").
  double total = 0.0;
  for (const auto& [app, placement] : plan) {
    total += place::estimate_completion_s(*app, *placement, state_->view(),
                                          config_.rate_model);
  }
  return total;
}

Choreo::ReevalReport Choreo::reevaluate(std::uint64_t epoch) {
  CHOREO_REQUIRE_MSG(measured_, "call measure_network() first");
  CHOREO_OBS_SPAN(span, config_.obs, "place.reeval", "place");
  ReevalReport report;
  report.apps_considered = running_.size();
  CHOREO_OBS_INC(obs_.reevals, config_.obs);
  if (running_.empty()) return report;

  // Refresh the network picture first (§2.4: "Choreo re-measures the
  // network" and "this re-evaluation also allows Choreo to react to major
  // changes in the network"). With incremental_refresh on, only stale or
  // volatile pairs are re-probed — the report records the saved probes.
  measure_network(epoch);
  report.measurement = last_measure_;

  // Current plan cost.
  std::vector<std::pair<const place::Application*, const place::Placement*>> current;
  for (const auto& [handle, entry] : running_) {
    current.emplace_back(&entry.app, &entry.placement);
  }
  const double current_cost = estimated_total_completion(current);

  // Hypothetical re-placement from a clean slate, apps in handle (arrival)
  // order. The scratch state shares the live engine's cached rate indexes
  // (no re-validate / re-sort), and the greedy reuses the scratch residuals
  // across apps as they are committed one by one.
  place::ClusterState scratch = state_->clone_unoccupied();
  std::map<AppHandle, place::Placement> proposal;
  place::GreedyPlacer greedy(config_.rate_model);
  const place::PlacementEngine::Counters scratch_base = scratch.engine().counters();
  for (const auto& [handle, entry] : running_) {
    const place::Placement p = greedy.place(entry.app, scratch);
    scratch.commit(entry.app, p);
    proposal.emplace(handle, p);
  }
  {
    // The scratch engine's search effort is real work; fold its deltas in
    // (the scratch clone inherits the parent's counter totals).
    const place::PlacementEngine::Counters& sc = scratch.engine().counters();
    CHOREO_OBS_ADD(obs_.candidates_walked, config_.obs,
                   sc.candidates_walked - scratch_base.candidates_walked);
    CHOREO_OBS_ADD(obs_.txn_ops, config_.obs, sc.txn_ops - scratch_base.txn_ops);
  }
  std::vector<std::pair<const place::Application*, const place::Placement*>> proposed;
  std::size_t moved = 0;
  for (const auto& [handle, entry] : running_) {
    const place::Placement& p = proposal.at(handle);
    proposed.emplace_back(&entry.app, &p);
    for (std::size_t t = 0; t < entry.app.task_count(); ++t) {
      if (p.machine_of_task[t] != entry.placement.machine_of_task[t]) ++moved;
    }
  }
  const double proposed_cost = estimated_total_completion(proposed);

  report.tasks_to_move = moved;
  report.estimated_gain_s = current_cost - proposed_cost;
  report.migration_cost_s =
      static_cast<double>(moved) * config_.migration_cost_per_task_s;

  if (moved > 0 && report.estimated_gain_s > report.migration_cost_s) {
    // Adopt: release everything, commit the new placements.
    for (auto& [handle, entry] : running_) {
      state_->release(entry.app, entry.placement);
    }
    for (auto& [handle, entry] : running_) {
      entry.placement = proposal.at(handle);
      state_->commit(entry.app, entry.placement);
    }
    report.adopted = true;
    report.tasks_migrated = moved;
    CHOREO_OBS_ADD(obs_.tasks_migrated, config_.obs, moved);
  }
  span.arg("apps", static_cast<double>(report.apps_considered));
  span.arg("tasks_to_move", static_cast<double>(report.tasks_to_move));
  span.arg("adopted", report.adopted ? 1.0 : 0.0);
  return report;
}

std::vector<cloud::Cloud::Transfer> Choreo::transfers_for(
    const place::Application& app, const place::Placement& placement,
    double start_s) const {
  app.validate();
  CHOREO_REQUIRE(placement.machine_of_task.size() == app.task_count());
  CHOREO_REQUIRE(placement.complete());
  std::vector<cloud::Cloud::Transfer> out;
  for (std::size_t i = 0; i < app.task_count(); ++i) {
    for (std::size_t j = 0; j < app.task_count(); ++j) {
      const double b = app.traffic_bytes(i, j);
      if (b <= 0.0) continue;
      cloud::Cloud::Transfer tr;
      tr.src = vms_[placement.machine_of_task[i]];
      tr.dst = vms_[placement.machine_of_task[j]];
      tr.bytes = b;
      tr.start_s = start_s;
      out.push_back(tr);
    }
  }
  return out;
}

}  // namespace choreo::core

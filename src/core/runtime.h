#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "core/session.h"
#include "workload/stream.h"

namespace choreo::core {

/// The typed discrete events a session runtime schedules (§2.4's continuously
/// running controller reified): applications arriving, estimated completions
/// freeing VMs, FIFO retries of queued applications, the periodic placement
/// review, and the measurement refresh that precedes each placement.
enum class RuntimeEventKind : std::uint8_t {
  Arrival,
  Departure,
  QueueRetry,
  ReevalTick,
  MeasureRefresh,
};

const char* to_string(RuntimeEventKind kind);

/// Knobs orthogonal to ControllerConfig: what the runtime records, where its
/// measurement epochs come from, and how its log entries are tagged.
struct RuntimeOptions {
  /// Keep every SessionEvent in SessionLog::events. Turn off for long
  /// streaming sessions (counters and outcomes still accumulate).
  bool record_events = true;
  /// Keep every AppOutcome in SessionLog::apps. Turn off for constant-memory
  /// streaming; finished/rejected outcomes are then delivered via on_outcome
  /// and only aggregate counters are kept.
  bool record_outcomes = true;
  /// Optional sink invoked for every event as it happens (independent of
  /// record_events).
  std::function<void(const SessionEvent&)> on_event;
  /// Optional sink invoked when an application retires (finishes or is
  /// rejected) — the only way to observe per-app results with
  /// record_outcomes off.
  std::function<void(const AppOutcome&)> on_outcome;
  /// Where measurement epochs come from. Default: a runtime-local counter
  /// 1, 2, 3, ... (bit-identical to the historical Controller). Multi-tenant
  /// sessions share the cloud's counter instead, so tenants' measurement
  /// cycles interleave on the shared clock and observe the cloud's evolving
  /// background realizations in session order.
  std::function<std::uint64_t()> epoch_source;
  /// Tag stamped into every SessionEvent::tenant this runtime emits.
  std::uint32_t tenant = 0;
};

/// Discrete-event control plane for one tenant session: a typed event queue
/// with deterministic tie-breaking on a shared clock, replacing the
/// hand-rolled merge loop the Controller used to be. Pulls applications
/// one at a time from a workload::ArrivalStream (at most one look-ahead app
/// is held), so week-long traces stream through at constant memory.
///
/// Determinism: events are ordered by (time, phase priority, sequence
/// number). The phase priorities encode the §2.4 processing order at one
/// instant — departures free capacity first, queued applications retry in
/// FIFO order, then arrivals (each preceded by its measurement refresh) are
/// placed, and the periodic re-evaluation runs last; a departure whose
/// estimated completion equals the current instant waits for the next
/// instant's departure phase, exactly like the historical merge loop.
/// test_runtime_differential pins the whole SessionLog — events, outcomes,
/// accounting — bit-identical to run_session_reference (the pre-refactor
/// loop kept verbatim as the oracle).
///
/// One documented exclusion from that contract: the old loop merged every
/// event within 1e-9 s of the iteration instant into that iteration, so two
/// events whose times differ by a sub-epsilon-but-nonzero amount were
/// processed as simultaneous; the runtime orders them by their exact
/// timestamps instead. Exactly equal times (the realizable case — e.g. an
/// app with zero network time departing at its arrival instant) reproduce
/// the old order via the phase priorities; times that differ by less than
/// 1e-9 without being equal cannot arise from the workloads' round arrival
/// times and computed completion estimates except by deliberate
/// construction.
class SessionRuntime {
 public:
  /// Runtime introspection counters; the peaks are what
  /// bench/tbl_session_scale uses to enforce constant-memory streaming (the
  /// live state is bounded by the fleet, never by the trace length).
  struct Stats {
    std::uint64_t events_processed = 0;  ///< live events dispatched
    std::uint64_t stale_skipped = 0;     ///< superseded events dropped
    std::uint64_t arrivals = 0;
    std::uint64_t placements = 0;
    std::uint64_t departures = 0;
    std::uint64_t retries = 0;  ///< QueueRetry passes run
    std::uint64_t measure_cycles = 0;
    std::uint64_t reevaluations = 0;
    std::size_t peak_queue = 0;      ///< max pending events
    std::size_t peak_in_flight = 0;  ///< max concurrently running apps
    std::size_t peak_waiting = 0;    ///< max queued (deferred) apps
    /// Every joint batch size the batched retry drain attempted (in order),
    /// successful or not; empty unless config.batch.enabled. Introspection
    /// for tests pinning the drain's step-down sequence — not part of the
    /// SessionLog, so recording it cannot perturb log bit-identity.
    std::vector<std::size_t> batch_attempts;
  };

  SessionRuntime(cloud::Cloud& cloud, std::vector<cloud::VmId> vms,
                 ControllerConfig config, RuntimeOptions options = {});

  /// Runs the initial measurement sweep and schedules the first arrival.
  /// `stream` must outlive the runtime; arrival times must be
  /// non-decreasing.
  void start(workload::ArrivalStream& stream);

  /// True when no live event remains (stream exhausted, every placed app
  /// departed). The session may still hold waiting apps that can never be
  /// placed — finish() asserts on that.
  bool done();

  /// Time of the next live event; +infinity when done. Multi-tenant
  /// composition uses this to interleave runtimes on a shared clock.
  double next_time();

  /// The next live event's time and kind (the event step() would process),
  /// or nullopt when done. The sharded control plane uses the kind to tell
  /// apart steps that will draw a measurement epoch (MeasureRefresh,
  /// ReevalTick) — which must be sequenced globally — from steps that touch
  /// only tenant-local state.
  struct PendingEvent {
    double time_s = 0.0;
    RuntimeEventKind kind = RuntimeEventKind::Arrival;
  };
  std::optional<PendingEvent> peek_event();

  /// Processes exactly one live event.
  void step();

  // ---- epoch-draw lookahead (conservative parallel composition) -----------
  // Epoch draws are the only cross-tenant coupling in a multi-tenant
  // session; these accessors let core::ShardedSession bound when this
  // runtime's *next* draw can happen without executing anything. All bounds
  // are conservative (the true next draw is never earlier) and monotone
  // non-decreasing as the session advances.

  /// Arrival time of the pulled-but-unprocessed look-ahead application, or
  /// +infinity when the stream is exhausted. Every future MeasureRefresh
  /// draw happens at or after this instant.
  double pending_arrival_time() const;

  /// Earliest instant a future re-evaluation can fire (and draw an epoch):
  /// ticks are always scheduled at max(next_reeval deadline, now), and the
  /// deadline only moves forward.
  double next_reeval_time() const { return next_reeval_; }

  /// True when nothing is running or queued — re-evaluations cannot fire
  /// before the next arrival is placed, so the next epoch draw is exactly
  /// the pending arrival's measurement refresh.
  bool fleet_idle() const { return in_flight_.empty() && waiting_.empty(); }

  /// Final accounting; returns the session log (moved out). Call once,
  /// after done().
  SessionLog finish();

  /// start + step-to-completion + finish.
  SessionLog run(workload::ArrivalStream& stream);

  const Stats& stats() const { return stats_; }
  double now() const { return now_; }

  /// The controller driving this session (valid after start()). Exposes the
  /// measurement plane's internals — notably Choreo::agent_plane() when the
  /// session runs with config.agents.enabled.
  const Choreo& choreo() const {
    CHOREO_REQUIRE(choreo_ != nullptr);
    return *choreo_;
  }

 private:
  struct Event {
    double time_s = 0.0;
    std::uint32_t prio = 0;
    std::uint64_t seq = 0;
    RuntimeEventKind kind = RuntimeEventKind::Arrival;
    std::uint64_t id = 0;   ///< Departure: AppHandle
    std::uint64_t gen = 0;  ///< Departure / ReevalTick generation
  };
  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      if (a.prio != b.prio) return a.prio > b.prio;
      return a.seq > b.seq;
    }
  };

  /// An application the runtime owns between stream pull and retirement.
  /// `outcome` is authoritative only with record_outcomes off; otherwise the
  /// log's slot (indexed by ordinal) is.
  struct AppRecord {
    std::uint32_t ordinal = 0;
    place::Application app;
    AppOutcome outcome;
  };
  struct InFlight {
    AppRecord rec;
    Choreo::AppHandle handle = 0;
    double est_finish_s = 0.0;
    std::uint64_t gen = 0;
  };

  AppOutcome& outcome_of(AppRecord& rec);
  std::uint64_t next_epoch();
  void measure();
  /// Folds one measurement cycle's report into the session accounting
  /// (wall clock, probes, per-pair refresh/forecast counters).
  void accumulate_measure(const Choreo::MeasureReport& report);
  void push_event(Event ev);
  void emit(const SessionEvent& ev);
  void retire(AppRecord& rec);

  void schedule_departure(const InFlight& entry);
  void schedule_tick();
  void schedule_retry(double time_s);
  void pull_next_arrival();

  bool is_stale(const Event& ev) const;
  void prune();

  /// Bookkeeping for an application Choreo just committed: outcome fields,
  /// the Placed event, the in-flight entry, and its departure/tick schedule.
  void admit(AppRecord rec, Choreo::AppHandle handle);
  bool try_place(AppRecord& rec);
  /// Plans the first `count` waiting applications jointly (serving plane's
  /// batched arrival path) and admits all of them; false (state untouched)
  /// when the joint application does not fit.
  bool try_place_batch(std::size_t count);
  void handle_arrival();
  void handle_retry();
  void handle_departure();
  void handle_reeval();

  cloud::Cloud& cloud_;
  std::vector<cloud::VmId> vms_;
  ControllerConfig config_;
  RuntimeOptions opts_;
  std::unique_ptr<Choreo> choreo_;
  workload::ArrivalStream* stream_ = nullptr;
  SessionLog log_;
  std::vector<InFlight> in_flight_;  ///< placement order, like the old loop
  std::deque<AppRecord> waiting_;    ///< FIFO retry queue
  std::optional<AppRecord> pending_; ///< the one look-ahead arrival
  std::priority_queue<Event, std::vector<Event>, EventAfter> queue_;
  double now_ = 0.0;
  double next_reeval_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t tick_gen_ = 0;
  std::uint64_t local_epoch_ = 1;
  std::uint32_t next_ordinal_ = 0;
  double streamed_runtime_s_ = 0.0;
  bool started_ = false;
  bool finished_ = false;
  Stats stats_;

  /// Session-plane registry handles (resolved from config.choreo.obs at
  /// construction). Session spans additionally stamp sim-time via
  /// SpanGuard::sim(now_, ...), so traces line up on the session clock.
  obs::Counter obs_arrivals_;
  obs::Counter obs_departures_;
  obs::Counter obs_batch_placed_;
};

/// One tenant of a multi-tenant session: a name, a disjoint slice of the
/// shared cloud's VMs, its own controller configuration, and its workload.
/// The stream is not owned and must outlive the session.
struct TenantSpec {
  std::string name;
  std::vector<cloud::VmId> vms;
  ControllerConfig config;
  workload::ArrivalStream* stream = nullptr;
};

struct MultiTenantLog {
  /// One log per tenant, in TenantSpec order.
  std::vector<SessionLog> tenants;
  /// Tenant logs merged on the shared clock: events interleaved by
  /// (time, tenant), outcomes concatenated (event app indices re-based to
  /// the concatenation), counters summed.
  SessionLog aggregate;
};

/// N Choreo instances over disjoint VM slices of one shared cloud::Cloud,
/// their discrete events interleaved deterministically on a shared clock
/// (earliest next event wins; ties break by tenant index). All tenants draw
/// measurement epochs from the shared cloud's counter, so each measurement
/// cycle observes the cloud as of its position in the global session order —
/// the §7.2 multi-user regime, where every tenant measures individually
/// under whatever the others are doing.
struct MultiTenantOptions {
  bool record_events = true;
  bool record_outcomes = true;
};

class MultiTenantSession {
 public:
  MultiTenantSession(cloud::Cloud& cloud, std::vector<TenantSpec> tenants,
                     MultiTenantOptions options = {});

  /// Runs every tenant session to completion. Call once.
  MultiTenantLog run();

  /// Per-tenant runtime stats, valid after run().
  const std::vector<SessionRuntime::Stats>& tenant_stats() const { return stats_; }

 private:
  cloud::Cloud& cloud_;
  std::vector<TenantSpec> tenants_;
  MultiTenantOptions opts_;
  std::vector<SessionRuntime::Stats> stats_;
  bool ran_ = false;
};

}  // namespace choreo::core

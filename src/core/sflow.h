#pragma once

#include <cstdint>
#include <vector>

#include "core/profiler.h"
#include "util/rng.h"

namespace choreo::core {

/// §2.1: "Choreo uses a network monitoring tool such as sFlow or tcpdump to
/// gather application communication patterns." sFlow does not see every
/// packet — it samples 1 in N and the collector scales the counts back up.
/// This module emulates that pipeline: given the true task-to-task transfer
/// volumes of a (test or production) run, it produces the sampled,
/// scaled-back flow records a collector would hand to the Profiler.
struct SflowConfig {
  /// Packet sampling rate: one sampled packet per `sampling_rate` packets
  /// (sFlow deployments commonly use 1:1024 to 1:8192 on ToR switches).
  std::uint32_t sampling_rate = 1024;
  /// Bytes per sampled frame (MTU-sized for bulk transfers).
  std::uint32_t packet_bytes = 1500;
};

/// One true transfer observed during a run.
struct ObservedTransfer {
  std::size_t src_task = 0;
  std::size_t dst_task = 0;
  double bytes = 0.0;
  double start_s = 0.0;
  double end_s = 0.0;
};

/// Samples the transfers the way an sFlow agent would: each transfer's
/// packet count is thinned binomially at 1/sampling_rate, and each sampled
/// packet becomes a FlowRecord carrying `sampling_rate * packet_bytes`
/// estimated bytes, timestamped uniformly across the transfer's lifetime.
///
/// Small flows may produce no samples at all (the classic sFlow blind spot);
/// heavy flows — the ones that matter for placement (§2.1) — are estimated
/// within a few percent.
std::vector<FlowRecord> sflow_sample(const std::vector<ObservedTransfer>& transfers,
                                     const SflowConfig& config, Rng& rng);

/// Convenience: run the whole §2.1 pipeline — sample the observed transfers
/// and fold them into a profiler.
Profiler profile_from_sflow(std::size_t task_count,
                            const std::vector<ObservedTransfer>& transfers,
                            const SflowConfig& config, Rng& rng);

}  // namespace choreo::core

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "agent/options.h"
#include "cloud/cloud.h"
#include "forecast/predictive_policy.h"
#include "measure/throughput_matrix.h"
#include "obs/observer.h"
#include "place/cluster.h"
#include "place/engine.h"
#include "place/greedy.h"
#include "place/placer.h"

namespace choreo::agent {
class AgentPlane;
}

namespace choreo::core {

struct ChoreoConfig {
  /// Packet-train schedule used by the measurement phase; calibrate per
  /// provider (§4.1).
  measure::MeasurementPlan plan;
  /// Staleness rules for incremental refresh: which cached pair estimates a
  /// measurement cycle re-probes (never measured / older than max_age_epochs
  /// / volatile per the §2.1 predictability signal).
  measure::RefreshPolicy refresh;
  /// When true (default), measure_network() after the first full sweep only
  /// re-probes the pairs the refresh policy flags; when false every cycle
  /// re-measures the entire matrix from scratch.
  bool incremental_refresh = true;
  /// Forecast plane (§2.1 predictability, applied online): per-pair rate
  /// history, competing predictors with online error tracking, and
  /// predictability-score-driven refresh planning in place of the fixed
  /// stale/volatile rules. Disabled by default — the disabled pipeline is
  /// bit-identical to the fixed policy (pinned by test_forecast_differential).
  forecast::ForecastOptions forecast;
  /// Rate model for the greedy placement (hose matches what §4.3 found on
  /// EC2 and Rackspace).
  place::RateModel rate_model = place::RateModel::Hose;
  /// §2.4: every T seconds Choreo re-evaluates its placements and migrates
  /// if worthwhile. "T can be chosen to reflect the cost of migration."
  double reevaluate_period_s = 600.0;
  /// Estimated cost of migrating one task (seconds of added completion
  /// time); a migration is adopted only if the estimated completion-time
  /// gain exceeds tasks_moved * this.
  double migration_cost_per_task_s = 20.0;
  /// Harness escape hatch: when false, placement uses ground-truth rates
  /// instead of packet-train measurements (isolates placement quality from
  /// measurement error in ablations).
  bool use_measured_view = true;
  /// Distributed agent plane: when agents.enabled, measure_network() runs a
  /// host-agent/cluster-agent cycle over a SimTransport instead of probing
  /// in-process. With the default (lossless, zero-delay) transport the two
  /// paths are bit-identical (pinned by test_agent); with fault injection
  /// the controller places against a stale-or-partial view with forecast
  /// fill over the gaps. Ignored when use_measured_view is false.
  agent::AgentOptions agents;
  /// Observability plane attachment (src/obs): a null observer (the
  /// default) keeps every instrumentation site a no-op branch. Multi-tenant
  /// drivers hand each tenant `obs.with_lane(tenant, shard)` so traces
  /// separate by lane while counter totals merge deterministically.
  obs::Observer obs;
};

/// The Choreo system (§2): measure the network between the tenant's VMs,
/// profile applications, place each application's tasks, and keep running
/// applications' placements under review.
///
/// One Choreo instance manages one tenant's fleet on one cloud. It is the
/// integration point the examples and the §6 benches drive.
class Choreo {
 public:
  /// Opaque identifier for a placed application, returned by
  /// place_application and valid until remove_application. Never reused
  /// within one Choreo instance.
  using AppHandle = std::size_t;

  /// Manages `vms` (the tenant's rented fleet) on `cloud`. The Cloud must
  /// outlive this object; Choreo only interacts with it through the tenant
  /// interface (packet trains, traceroute, transfers — §2.2).
  Choreo(cloud::Cloud& cloud, std::vector<cloud::VmId> vms, ChoreoConfig config);
  ~Choreo();

  /// The tenant's fleet, in the index order used by ClusterView/Placement
  /// machine indices.
  const std::vector<cloud::VmId>& vms() const { return vms_; }
  const ChoreoConfig& config() const { return config_; }

  /// What one measurement cycle cost: the §4.1 overhead accounting the
  /// benches track, now with probe counts so incremental refreshes are
  /// visible.
  struct MeasureReport {
    /// Modeled wall-clock on the real cloud ("less than three minutes for a
    /// ten-node topology", §4.1); 0 when nothing was probed.
    double wall_time_s = 0.0;
    std::size_t pairs_probed = 0;  ///< n(n-1) on a full sweep, fewer after
    std::size_t rounds = 0;        ///< conflict-free concurrent-train rounds
    /// True when this cycle re-used cached estimates (probed a strict subset).
    bool incremental = false;

    // Why each probed pair qualified (the RefreshPlan counts).
    std::size_t never_measured = 0;  ///< includes pairs of newly allocated VMs
    std::size_t stale = 0;           ///< older than refresh.max_age_epochs
    std::size_t volatile_pairs = 0;  ///< fixed policy's two-sample volatility rule

    // Forecast-plane accounting (all zero while config.forecast is disabled).
    std::size_t predictable_pairs = 0;    ///< skipped: forecasts trusted this cycle
    /// Probed because the forecast cannot be trusted: the budget's
    /// worst-predicted picks plus pairs still warming up their error track.
    std::size_t unpredictable_pairs = 0;
    std::size_t changepoint_pairs = 0;    ///< probed: CUSUM flagged a regime shift
    std::size_t predicted_pairs = 0;      ///< view entries filled from forecasts
    bool forecast_full_sweep = false;     ///< regime alarm forced probing everything

    // Agent-plane accounting (all zero while config.agents is disabled; on
    // the lossless zero-delay oracle transport, planned == probed and
    // missing == 0, keeping every shared field above bit-identical to the
    // in-process path).
    std::size_t agent_pairs_planned = 0;  ///< pairs the controller requested
    std::size_t agent_pairs_missing = 0;  ///< planned pairs with no in-cycle report
    std::size_t agent_reports = 0;        ///< fresh StatsReports integrated
  };

  /// Runs the measurement phase (§4.1): packet trains scheduled into
  /// conflict-free rounds (plus traceroute clustering), refreshing the
  /// cluster view placements use. The first call probes every ordered pair;
  /// later calls re-probe only stale/volatile pairs unless
  /// config().incremental_refresh is false, and swap the refreshed view into
  /// the existing placement state in place (residual occupancy is kept;
  /// only the engine's static rate indexes are rebuilt — no replay of
  /// running applications). `epoch` selects the cloud's
  /// cross-traffic snapshot — the same epoch always observes the same
  /// network conditions, which is what makes runs reproducible. Returns the
  /// wall-clock seconds the phase would take on the real cloud — or 0.0 when
  /// config().use_measured_view is false, in which case the view comes from
  /// ground truth and no trains are sent.
  double measure_network(std::uint64_t epoch);

  /// Detailed accounting of the most recent measure_network() cycle.
  const MeasureReport& last_measure() const { return last_measure_; }

  /// The distributed measurement plane, or nullptr until the first
  /// measure_network() with config.agents.enabled (and never otherwise).
  /// Exposes transport/controller/host counters for benches and tests.
  const agent::AgentPlane* agent_plane() const { return plane_.get(); }

  /// The tenant's current knowledge of its cluster.
  const place::ClusterView& view() const;
  /// Cluster occupancy (committed placements).
  const place::ClusterState& state() const;

  /// Places a new application with the greedy algorithm (§5, Algorithm 1)
  /// on the current state and commits it. Requires measure_network() to
  /// have run; throws place::PlacementError if no assignment satisfies the
  /// CPU capacities and app.constraints.
  AppHandle place_application(const place::Application& app);

  /// Places with a caller-supplied algorithm instead (§5.2 ILP, §6
  /// baselines). Same commit semantics and failure behaviour as above.
  AppHandle place_application(const place::Application& app, place::Placer& placer);

  /// Commits a placement computed elsewhere (the serving plane's batched
  /// arrival path plans several queued applications jointly against state()
  /// and commits each one's slice here). The caller guarantees the placement
  /// is feasible on the current state; same handle semantics as
  /// place_application.
  AppHandle adopt_placement(const place::Application& app,
                            const place::Placement& placement);

  /// Releases a finished application's CPU reservations (§2.4 life cycle);
  /// `handle` becomes invalid.
  void remove_application(AppHandle handle);

  /// A committed application: its profiled traffic matrix (bytes between
  /// task pairs, §2.3) and the task → machine-index assignment.
  struct RunningApp {
    place::Application app;
    place::Placement placement;
  };
  /// All currently committed applications, keyed by handle.
  const std::map<AppHandle, RunningApp>& running() const { return running_; }
  /// The committed assignment for `handle`; machine indices refer to vms().
  const place::Placement& placement_of(AppHandle handle) const;

  /// §2.4 re-evaluation: refreshes the network view incrementally, re-places
  /// every running application from scratch (in arrival order), and adopts
  /// the new plan if the estimated completion-time gain exceeds the
  /// migration cost.
  struct ReevalReport {
    std::size_t apps_considered = 0;
    /// Tasks whose machine would change under the candidate plan — reported
    /// even when the plan is rejected.
    std::size_t tasks_to_move = 0;
    /// Tasks actually migrated: tasks_to_move when the plan was adopted,
    /// zero otherwise. Safe to accumulate without checking `adopted`.
    std::size_t tasks_migrated = 0;
    /// Predicted completion-time improvement of the candidate plan, seconds.
    double estimated_gain_s = 0.0;
    /// tasks_to_move * ChoreoConfig::migration_cost_per_task_s, seconds.
    double migration_cost_s = 0.0;
    /// True iff the candidate plan was committed (gain exceeded cost).
    bool adopted = false;
    /// Cost of the measurement refresh this re-evaluation triggered.
    MeasureReport measurement;
  };
  ReevalReport reevaluate(std::uint64_t epoch);

  /// Converts a placed application into the concrete VM-to-VM transfers
  /// (source VM, destination VM, bytes) to execute on the cloud, all
  /// starting at `start_s` seconds of cloud time. Zero-byte traffic-matrix
  /// entries produce no transfer; co-located pairs produce src == dst
  /// transfers the cloud completes instantly.
  std::vector<cloud::Cloud::Transfer> transfers_for(const place::Application& app,
                                                    const place::Placement& placement,
                                                    double start_s) const;

 private:
  /// Adds the live engine's counter deltas (since last scrape) to the
  /// registry. Called after every placement-producing operation.
  void scrape_engine_counters();

  double estimated_total_completion(
      const std::vector<std::pair<const place::Application*, const place::Placement*>>&
          plan) const;

  cloud::Cloud& cloud_;
  std::vector<cloud::VmId> vms_;
  ChoreoConfig config_;
  std::unique_ptr<place::ClusterState> state_;
  place::GreedyPlacer greedy_;
  std::map<AppHandle, RunningApp> running_;
  AppHandle next_handle_ = 1;
  bool measured_ = false;
  /// Epoch-stamped pair estimates carried across measurement cycles — what
  /// makes measure_network() incremental after the first sweep.
  measure::ViewCache cache_;
  /// The forecast plane: refresh planning (predictive or, when disabled,
  /// delegating verbatim to config.refresh), per-pair history, and the
  /// prediction/discount view rewrite.
  forecast::PredictivePolicy policy_;
  /// The distributed measurement plane (config.agents); created lazily on
  /// the first agent-path measure_network(). When active it owns the
  /// ViewCache/PredictivePolicy lifecycle and cache_/policy_ above are
  /// bypassed.
  std::unique_ptr<agent::AgentPlane> plane_;
  MeasureReport last_measure_;

  /// obs registry handles, resolved once at construction (inert when
  /// config.obs carries no registry). Engine counters are scraped as deltas
  /// after each placement, so clones/rebuilds never double-count.
  struct ObsHandles {
    obs::Counter measure_cycles, pairs_probed, rounds;
    obs::Counter refresh_never, refresh_stale, refresh_volatile, pairs_predicted;
    obs::Counter apps_placed, candidates_walked, txn_ops;
    obs::Counter reevals, tasks_migrated;
  };
  ObsHandles obs_;
  place::PlacementEngine::Counters engine_seen_;
};

}  // namespace choreo::core

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "cloud/cloud.h"
#include "measure/throughput_matrix.h"
#include "place/cluster.h"
#include "place/greedy.h"
#include "place/placer.h"

namespace choreo::core {

struct ChoreoConfig {
  /// Packet-train schedule used by the measurement phase; calibrate per
  /// provider (§4.1).
  measure::MeasurementPlan plan;
  /// Rate model for the greedy placement (hose matches what §4.3 found on
  /// EC2 and Rackspace).
  place::RateModel rate_model = place::RateModel::Hose;
  /// §2.4: every T seconds Choreo re-evaluates its placements and migrates
  /// if worthwhile. "T can be chosen to reflect the cost of migration."
  double reevaluate_period_s = 600.0;
  /// Estimated cost of migrating one task (seconds of added completion
  /// time); a migration is adopted only if the estimated completion-time
  /// gain exceeds tasks_moved * this.
  double migration_cost_per_task_s = 20.0;
  /// Harness escape hatch: when false, placement uses ground-truth rates
  /// instead of packet-train measurements (isolates placement quality from
  /// measurement error in ablations).
  bool use_measured_view = true;
};

/// The Choreo system (§2): measure the network between the tenant's VMs,
/// profile applications, place each application's tasks, and keep running
/// applications' placements under review.
///
/// One Choreo instance manages one tenant's fleet on one cloud. It is the
/// integration point the examples and the §6 benches drive.
class Choreo {
 public:
  using AppHandle = std::size_t;

  Choreo(cloud::Cloud& cloud, std::vector<cloud::VmId> vms, ChoreoConfig config);

  const std::vector<cloud::VmId>& vms() const { return vms_; }
  const ChoreoConfig& config() const { return config_; }

  /// Runs the measurement phase: packet trains across all VM pairs (plus
  /// traceroute clustering), refreshing the cluster view placements use.
  /// Returns the wall-clock seconds the phase would take on the real cloud
  /// ("less than three minutes for a ten-node topology", §4.1).
  double measure_network(std::uint64_t epoch);

  /// The tenant's current knowledge of its cluster.
  const place::ClusterView& view() const;
  /// Cluster occupancy (committed placements).
  const place::ClusterState& state() const;

  /// Places a new application with the greedy algorithm on the current
  /// state and commits it. Requires measure_network() to have run.
  AppHandle place_application(const place::Application& app);

  /// Places with a caller-supplied algorithm instead (baselines, ILP).
  AppHandle place_application(const place::Application& app, place::Placer& placer);

  /// Releases a finished application's resources.
  void remove_application(AppHandle handle);

  struct RunningApp {
    place::Application app;
    place::Placement placement;
  };
  const std::map<AppHandle, RunningApp>& running() const { return running_; }
  const place::Placement& placement_of(AppHandle handle) const;

  /// §2.4 re-evaluation: re-measures, re-places every running application
  /// from scratch (in arrival order), and adopts the new plan if the
  /// estimated completion-time gain exceeds the migration cost.
  struct ReevalReport {
    std::size_t apps_considered = 0;
    std::size_t tasks_migrated = 0;
    double estimated_gain_s = 0.0;
    double migration_cost_s = 0.0;
    bool adopted = false;
  };
  ReevalReport reevaluate(std::uint64_t epoch);

  /// Converts a placed application into the concrete VM-to-VM transfers to
  /// execute on the cloud.
  std::vector<cloud::Cloud::Transfer> transfers_for(const place::Application& app,
                                                    const place::Placement& placement,
                                                    double start_s) const;

 private:
  double estimated_total_completion(
      const std::vector<std::pair<const place::Application*, const place::Placement*>>&
          plan) const;

  cloud::Cloud& cloud_;
  std::vector<cloud::VmId> vms_;
  ChoreoConfig config_;
  std::unique_ptr<place::ClusterState> state_;
  place::GreedyPlacer greedy_;
  std::map<AppHandle, RunningApp> running_;
  AppHandle next_handle_ = 1;
  bool measured_ = false;
};

}  // namespace choreo::core

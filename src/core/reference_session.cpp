#include "core/reference_session.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "place/rate_model.h"
#include "util/require.h"

namespace choreo::core {

// The historical hand-rolled merge loop over (arrivals, departures,
// re-evaluation ticks). Event pushes use the typed SessionEvent, but every
// decision, comparison, and accumulation is the original code.
SessionLog run_session_reference(cloud::Cloud& cloud,
                                 const std::vector<cloud::VmId>& vms,
                                 const ControllerConfig& config,
                                 const std::vector<place::Application>& apps) {
  CHOREO_REQUIRE(vms.size() >= 2);
  CHOREO_REQUIRE(config.choreo.reevaluate_period_s > 0.0);
  CHOREO_REQUIRE(!apps.empty());
  for (std::size_t i = 1; i < apps.size(); ++i) {
    CHOREO_REQUIRE_MSG(apps[i - 1].arrival_s <= apps[i].arrival_s,
                       "applications must be sorted by arrival time");
  }

  Choreo choreo(cloud, vms, config.choreo);
  std::uint64_t epoch = 1;
  SessionLog log;

  const auto measure = [&] {
    choreo.measure_network(epoch++);
    log.measurement_wall_s += choreo.last_measure().wall_time_s;
    log.pairs_probed += choreo.last_measure().pairs_probed;
  };
  measure();

  log.apps.resize(apps.size());
  for (std::size_t i = 0; i < apps.size(); ++i) {
    log.apps[i].name = apps[i].name;
    log.apps[i].arrival_s = apps[i].arrival_s;
  }

  const auto app_event = [&](double time_s, SessionEventKind kind, std::size_t idx) {
    SessionEvent ev;
    ev.time_s = time_s;
    ev.kind = kind;
    ev.app = static_cast<std::uint32_t>(idx);
    log.events.push_back(ev);
  };

  struct Running {
    std::size_t app_index;
    Choreo::AppHandle handle;
    double est_finish_s;
  };
  std::vector<Running> running;
  std::deque<std::size_t> waiting;  // indices into apps, FIFO
  std::size_t next_arrival = 0;
  double now = 0.0;
  double next_reeval = config.choreo.reevaluate_period_s;

  const auto estimate_finish = [&](std::size_t app_index, const place::Placement& p) {
    return now + place::estimate_completion_s(apps[app_index], p, choreo.view(),
                                              config.choreo.rate_model);
  };

  const auto try_place = [&](std::size_t app_index) -> bool {
    try {
      const auto handle = choreo.place_application(apps[app_index]);
      const place::Placement& p = choreo.placement_of(handle);
      running.push_back(Running{app_index, handle, estimate_finish(app_index, p)});
      log.apps[app_index].placed_s = now;
      log.apps[app_index].placement = p;
      app_event(now, SessionEventKind::Placed, app_index);
      return true;
    } catch (const place::PlacementError&) {
      return false;
    }
  };

  const auto finish_due = [&] {
    for (auto it = running.begin(); it != running.end();) {
      if (it->est_finish_s <= now + 1e-9) {
        log.apps[it->app_index].finished_s = it->est_finish_s;
        app_event(it->est_finish_s, SessionEventKind::Departure, it->app_index);
        choreo.remove_application(it->handle);
        it = running.erase(it);
      } else {
        ++it;
      }
    }
  };

  while (next_arrival < apps.size() || !running.empty() || !waiting.empty()) {
    // Next event time: arrival, earliest departure, or re-evaluation tick.
    double t_next = std::numeric_limits<double>::infinity();
    if (next_arrival < apps.size()) {
      t_next = std::min(t_next, apps[next_arrival].arrival_s);
    }
    for (const Running& r : running) t_next = std::min(t_next, r.est_finish_s);
    if (!running.empty()) t_next = std::min(t_next, next_reeval);
    CHOREO_ASSERT_MSG(std::isfinite(t_next), "controller stalled with waiting apps");
    now = std::max(now, t_next);

    // Departures free capacity first, then queued apps get another chance.
    finish_due();
    if (!waiting.empty()) {
      while (!waiting.empty() && try_place(waiting.front())) waiting.pop_front();
    }

    // Arrivals at this instant.
    while (next_arrival < apps.size() && apps[next_arrival].arrival_s <= now + 1e-9) {
      const std::size_t idx = next_arrival++;
      app_event(now, SessionEventKind::Arrival, idx);
      // §2.4: re-measure (incrementally) before placing.
      measure();
      if (!try_place(idx)) {
        if (config.queue_when_full) {
          waiting.push_back(idx);
          app_event(now, SessionEventKind::Deferred, idx);
        } else {
          log.apps[idx].rejected = true;
          ++log.rejected;
          app_event(now, SessionEventKind::Rejected, idx);
        }
      }
    }

    // Periodic re-evaluation (§2.4).
    if (!running.empty() && now + 1e-9 >= next_reeval) {
      const auto report = choreo.reevaluate(epoch++);
      ++log.reevaluations;
      log.measurement_wall_s += report.measurement.wall_time_s;
      log.pairs_probed += report.measurement.pairs_probed;
      if (report.adopted) {
        ++log.reevaluations_adopted;
        log.tasks_migrated += report.tasks_migrated;
        // Placements changed: refresh estimates and recorded placements.
        for (Running& r : running) {
          const place::Placement& p = choreo.placement_of(r.handle);
          log.apps[r.app_index].placement = p;
          r.est_finish_s = estimate_finish(r.app_index, p);
        }
      }
      SessionEvent ev;
      ev.time_s = now;
      ev.kind = SessionEventKind::Reevaluation;
      ev.tasks_migrated = static_cast<std::uint32_t>(report.tasks_migrated);
      ev.adopted = report.adopted;
      log.events.push_back(ev);
      next_reeval = now + config.choreo.reevaluate_period_s;
    }

    if (waiting.empty() && next_arrival >= apps.size() && running.empty()) break;
    CHOREO_ASSERT_MSG(!(next_arrival >= apps.size() && running.empty() && !waiting.empty()),
                      "waiting applications can never be placed");
  }

  for (const AppOutcome& a : log.apps) {
    if (a.finished_s >= 0.0) log.total_runtime_s += a.finished_s - a.arrival_s;
  }
  return log;
}

}  // namespace choreo::core

#include "core/controller.h"

#include "core/runtime.h"
#include "util/require.h"
#include "workload/stream.h"

namespace choreo::core {

Controller::Controller(cloud::Cloud& cloud, std::vector<cloud::VmId> vms,
                       ControllerConfig config)
    : cloud_(cloud), vms_(std::move(vms)), config_(std::move(config)) {
  CHOREO_REQUIRE(vms_.size() >= 2);
  CHOREO_REQUIRE(config_.choreo.reevaluate_period_s > 0.0);
}

SessionLog Controller::run(const std::vector<place::Application>& apps) {
  CHOREO_REQUIRE(!apps.empty());
  for (std::size_t i = 1; i < apps.size(); ++i) {
    CHOREO_REQUIRE_MSG(apps[i - 1].arrival_s <= apps[i].arrival_s,
                       "applications must be sorted by arrival time");
  }
  workload::VectorArrivalStream stream(apps);
  SessionRuntime runtime(cloud_, vms_, config_);
  return runtime.run(stream);
}

}  // namespace choreo::core

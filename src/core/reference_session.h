#pragma once

#include <vector>

#include "core/session.h"

namespace choreo::core {

/// The pre-runtime Controller::run loop, kept verbatim (modulo the typed
/// SessionEvent payloads) as the differential oracle for the discrete-event
/// SessionRuntime — the same role ExhaustiveGreedyPlacer plays for the
/// placement engine. test_runtime_differential pins the runtime-backed
/// Controller bit-identical (events, outcomes, accounting) to this loop on a
/// randomized single-tenant corpus. Do not "improve" this function; fix the
/// runtime instead.
SessionLog run_session_reference(cloud::Cloud& cloud,
                                 const std::vector<cloud::VmId>& vms,
                                 const ControllerConfig& config,
                                 const std::vector<place::Application>& apps);

}  // namespace choreo::core

#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/choreo.h"
#include "serve/batch.h"

namespace choreo::core {

/// Session-level configuration shared by the `Controller` facade and the
/// discrete-event `SessionRuntime` behind it. Drives a whole tenant session
/// the way §2 describes Choreo operating in production: applications arrive
/// over time and are placed on arrival (re-measuring first), finished
/// applications release their VMs, and "every T minutes, Choreo re-evaluates
/// its placement of the existing applications, and migrates tasks if
/// necessary" (§2.4).
struct ControllerConfig {
  ChoreoConfig choreo;
  /// Applications that do not fit at arrival wait in a FIFO queue and are
  /// retried at each departure. When false, an arrival that does not fit is
  /// rejected deterministically: a "rejected" event is logged, the app stays
  /// unplaced (placed_s < 0), and the session continues.
  bool queue_when_full = true;
  /// Opt-in batched drain of the retry queue: after departures free
  /// capacity, up to batch.max_batch waiting applications are planned
  /// jointly (place::combine + one placement) instead of one at a time.
  /// Disabled by default; disabled (and max_batch == 1) is bit-identical to
  /// the historical FIFO drain.
  serve::BatchArrivalOptions batch;
  /// Opt-in distributed measurement: when agents.enabled, the controller's
  /// measurement cycles run as host-agent/cluster-agent exchanges over a
  /// SimTransport (see agent::AgentOptions) instead of in-process probing.
  /// Copied over choreo.agents at session construction. With the default
  /// lossless zero-delay transport the session log is bit-identical to the
  /// in-process path (pinned by test_agent); with fault injection the
  /// controller places against a stale-or-partial, forecast-filled view.
  agent::AgentOptions agents;
};

/// What happened at one instant of a session. Values format (via
/// to_string) to the historical lower-case log text.
enum class SessionEventKind : std::uint8_t {
  Arrival,       ///< "arrival" — an application reached the controller
  Deferred,      ///< "deferred" — did not fit; queued for retry
  Rejected,      ///< "rejected" — did not fit and queueing is disabled
  Placed,        ///< "placed" — committed to the cluster
  Departure,     ///< "departure" — estimated completion reached; VMs freed
  Reevaluation,  ///< "reevaluation" — §2.4 periodic placement review
};

/// The historical log text ("arrival", "deferred", ...).
const char* to_string(SessionEventKind kind);

/// One session log entry. A plain value type with a typed payload — no
/// per-event heap allocation in the hot session loops; the legacy detail
/// text is reconstructed on demand by SessionLog::detail().
struct SessionEvent {
  /// `app` payload value for events that concern no application
  /// (reevaluations).
  static constexpr std::uint32_t kNoApp = std::numeric_limits<std::uint32_t>::max();

  double time_s = 0.0;
  SessionEventKind kind = SessionEventKind::Arrival;
  /// Index into SessionLog::apps for application events; kNoApp otherwise.
  std::uint32_t app = kNoApp;
  /// Owning tenant in a multi-tenant session's aggregate log; 0 otherwise.
  std::uint32_t tenant = 0;
  /// Reevaluation payload: tasks migrated (0 when the plan was rejected).
  std::uint32_t tasks_migrated = 0;
  /// Reevaluation payload: was the candidate plan adopted?
  bool adopted = false;
};

struct AppOutcome {
  std::string name;
  double arrival_s = 0.0;
  double placed_s = -1.0;   ///< may be later than arrival if queued; stays
                            ///< negative when the app was rejected
  double finished_s = -1.0;
  bool rejected = false;    ///< did not fit and queue_when_full was false
  place::Placement placement;
};

struct SessionLog {
  std::vector<SessionEvent> events;
  std::vector<AppOutcome> apps;
  std::size_t reevaluations = 0;
  std::size_t reevaluations_adopted = 0;
  std::size_t tasks_migrated = 0;
  std::size_t rejected = 0;  ///< arrivals rejected (queue_when_full = false)
  /// Sum over applications of (finished - arrival): the §6.3 metric.
  double total_runtime_s = 0.0;
  /// Measurement-plane cost of the whole session: modeled wall-clock and
  /// probe count summed over every measurement cycle (arrivals and
  /// re-evaluations). Incremental refresh shrinks both.
  double measurement_wall_s = 0.0;
  std::size_t pairs_probed = 0;
  /// Per-pair refresh accounting summed over every measurement cycle: why
  /// probes were spent (fixed policy's volatility rule; the forecast
  /// plane's unpredictable/change-point picks) and what they were saved on
  /// (pairs coasting on forecasts, view entries filled from predictions).
  /// The forecast counters stay zero while ChoreoConfig::forecast is
  /// disabled.
  std::size_t pairs_volatile = 0;
  std::size_t pairs_predictable = 0;
  std::size_t pairs_unpredictable = 0;
  std::size_t pairs_changepoint = 0;
  std::size_t pairs_predicted = 0;

  /// Reconstructs the historical detail text of an event: the application's
  /// name for app events, "migrated N tasks" / "kept placements" for
  /// reevaluations. Requires `e.app` to index into this log's `apps` (i.e.
  /// outcome recording was on) for app events.
  std::string detail(const SessionEvent& e) const;
};

}  // namespace choreo::core

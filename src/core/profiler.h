#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "place/app.h"
#include "util/matrix.h"

namespace choreo::core {

/// One observed flow between two application tasks — what an sFlow or
/// tcpdump collector emits after mapping endpoints to tasks (§2.1).
struct FlowRecord {
  std::size_t src_task = 0;
  std::size_t dst_task = 0;
  double bytes = 0.0;
  double timestamp_s = 0.0;
};

/// Folds flow records into the application's traffic matrix A, where "each
/// entry A_ij is a value proportional to the number of bytes sent from task
/// i to task j" (§2.1). Bytes — not rates — are profiled, because "the
/// number of bytes is usually independent of cross-traffic".
///
/// The profiler also aggregates per-hour totals so the tenant can check the
/// §2.1 predictability assumption and forecast the next hour's demand.
class Profiler {
 public:
  explicit Profiler(std::size_t task_count);

  void observe(const FlowRecord& record);
  void observe_all(const std::vector<FlowRecord>& records);

  std::size_t task_count() const { return matrix_.rows(); }
  std::size_t records_seen() const { return records_; }

  /// Accumulated traffic matrix (bytes).
  const DoubleMatrix& traffic_matrix() const { return matrix_; }

  /// Packages the profile as a placeable application.
  place::Application to_application(std::vector<double> cpu_demand,
                                    std::string name) const;

  /// Total bytes observed in each whole hour since t=0 (trailing partial
  /// hour included as the last element).
  std::vector<double> hourly_totals() const;

  /// Blended previous-hour / time-of-day forecast of next-hour bytes; falls
  /// back to previous-hour when less than a day of history exists, and to 0
  /// with no history.
  double predict_next_hour_bytes() const;

 private:
  DoubleMatrix matrix_;
  std::vector<double> hourly_;
  std::size_t records_ = 0;
};

}  // namespace choreo::core

#include "core/sharded.h"

#include <algorithm>
#include <atomic>
#include <unordered_set>
#include <utility>

#include "util/kway.h"
#include "util/require.h"
#include "util/worker_pool.h"

namespace choreo::core {

// ---- EpochArbiter ----------------------------------------------------------

EpochArbiter::EpochArbiter(std::size_t tenants, std::function<std::uint64_t()> draw)
    : slots_(tenants), draw_(std::move(draw)) {
  CHOREO_REQUIRE(tenants >= 1);
  CHOREO_REQUIRE(draw_ != nullptr);
}

void EpochArbiter::bump_locked() {
  ++version_;
  cv_.notify_all();
}

void EpochArbiter::try_grants_locked() {
  bool changed = false;
  while (true) {
    // The lex-min pending request is the only candidate: grants must follow
    // the oracle's (time, tenant) order exactly.
    std::size_t best = slots_.size();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].state != State::Waiting) continue;
      if (best == slots_.size() ||
          util::earlier_key(slots_[i].request_time, i, slots_[best].request_time, best)) {
        best = i;
      }
    }
    if (best == slots_.size()) break;

    // Safe iff no other live tenant can still draw at an earlier key. A
    // waiting tenant's key is exact; a running tenant's advertised bound is
    // conservative, so a grant blocked by it is only delayed, never lost.
    const double t = slots_[best].request_time;
    bool safe = true;
    for (std::size_t j = 0; j < slots_.size(); ++j) {
      if (j == best) continue;
      const Slot& other = slots_[j];
      if (other.state == State::Done) continue;
      const double key =
          other.state == State::Waiting ? other.request_time : other.bound;
      if (!util::earlier_key(t, best, key, j)) {
        safe = false;
        break;
      }
    }
    if (!safe) break;

    Slot& slot = slots_[best];
    slot.epoch = draw_();
    slot.state = State::Granted;
    // From the grant on, the tenant counts as running again with its
    // declared post-draw bound — which is what lets the *next* pending
    // request be granted in the same pass (the cascade that pipelines
    // measurement work across tenants).
    slot.bound = std::max(slot.bound, slot.post_bound);
    ++grants_;
    changed = true;
  }
  if (changed) bump_locked();
}

void EpochArbiter::set_bound(std::size_t tenant, double bound) {
  const std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[tenant];
  CHOREO_ASSERT_MSG(slot.state == State::Running, "set_bound on a parked tenant");
  // Re-advertising a weaker bound is legal (the caller recomputed from a
  // more conservative formula); keeping the max never invalidates anything
  // because every advertised bound was a true lower bound when set.
  if (bound <= slot.bound) return;
  slot.bound = bound;
  try_grants_locked();
}

std::optional<std::uint64_t> EpochArbiter::request(std::size_t tenant, double time_s,
                                                   double post_bound) {
  const std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[tenant];
  CHOREO_ASSERT_MSG(slot.state == State::Running, "double-request by a tenant");
  CHOREO_ASSERT_MSG(time_s >= slot.bound,
                    "a tenant drew earlier than its advertised bound");
  slot.state = State::Waiting;
  slot.request_time = time_s;
  slot.post_bound = post_bound;
  try_grants_locked();
  if (slot.state == State::Granted) {
    slot.state = State::Running;
    return slot.epoch;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> EpochArbiter::poll(std::size_t tenant) {
  const std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[tenant];
  if (slot.state != State::Granted) return std::nullopt;
  slot.state = State::Running;
  return slot.epoch;
}

void EpochArbiter::mark_done(std::size_t tenant) {
  const std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[tenant];
  CHOREO_ASSERT_MSG(slot.state == State::Running, "mark_done on a parked tenant");
  slot.state = State::Done;
  ++done_count_;
  try_grants_locked();
  bump_locked();
}

void EpochArbiter::abort() {
  const std::lock_guard<std::mutex> lock(mu_);
  aborted_ = true;
  bump_locked();
}

bool EpochArbiter::aborted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return aborted_;
}

std::uint64_t EpochArbiter::wait_change(std::uint64_t seen) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return version_ != seen || done_count_ == slots_.size() || aborted_;
  });
  return version_;
}

std::uint64_t EpochArbiter::version() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return version_;
}

bool EpochArbiter::all_done() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return done_count_ == slots_.size();
}

std::uint64_t EpochArbiter::grants() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return grants_;
}

// ---- ShardedSession --------------------------------------------------------

namespace {

/// One-application look-ahead over a tenant's workload: the sharded
/// scheduler needs the arrival time *after* the runtime's pending one to
/// bound a tenant's next epoch draw before executing the current one.
/// Pulling one application early changes nothing downstream — streams are
/// deterministic state machines, so the delivered sequence is identical.
class PeekStream final : public workload::ArrivalStream {
 public:
  explicit PeekStream(workload::ArrivalStream& inner) : inner_(&inner) {}

  std::optional<place::Application> next() override {
    if (buffer_) {
      std::optional<place::Application> out = std::move(buffer_);
      buffer_.reset();
      return out;
    }
    return inner_->next();
  }

  /// Arrival time of the next application, +infinity when exhausted.
  double peek_time() {
    if (!buffer_) buffer_ = inner_->next();
    if (!buffer_) return std::numeric_limits<double>::infinity();
    return buffer_->arrival_s;
  }

 private:
  workload::ArrivalStream* inner_;
  std::optional<place::Application> buffer_;
};

}  // namespace

struct ShardedSession::TenantCell {
  enum State : std::uint8_t { kRunnable, kAwaitGrant, kDone };

  std::size_t index = 0;
  double period_s = 0.0;
  std::unique_ptr<PeekStream> stream;
  std::unique_ptr<SessionRuntime> runtime;

  // Grant slot the runtime's epoch_source consumes. Written and read only
  // by the thread holding this cell's shard claim.
  std::uint64_t granted = 0;
  std::uint64_t start_epoch = 0;
  bool has_grant = false;
  bool started = false;
  State state = kRunnable;
  /// Last bound advertised to the arbiter — avoids taking its lock on the
  /// (common) steps that cannot raise the bound.
  double advertised = -std::numeric_limits<double>::infinity();

  SessionLog log;
  SessionRuntime::Stats stats;
};

struct ShardedSession::Shard {
  std::vector<std::size_t> tenants;  ///< global tenant indices (round-robin)
  std::atomic<bool> claimed{false};
  /// Set (under the claim) once every tenant finished; scanned lock-free.
  std::atomic<bool> done{false};
};

ShardedSession::ShardedSession(cloud::Cloud& cloud, std::vector<TenantSpec> tenants,
                               ShardedOptions options)
    : cloud_(cloud), tenants_(std::move(tenants)), opts_(options) {
  CHOREO_REQUIRE(!tenants_.empty());
  std::unordered_set<cloud::VmId> seen;
  for (const TenantSpec& t : tenants_) {
    CHOREO_REQUIRE_MSG(t.stream != nullptr, "tenant without a workload stream");
    CHOREO_REQUIRE(t.vms.size() >= 2);
    for (cloud::VmId vm : t.vms) {
      CHOREO_REQUIRE_MSG(seen.insert(vm).second,
                         "tenant VM slices must be disjoint");
    }
  }
}

ShardedSession::~ShardedSession() = default;

double ShardedSession::running_bound(const TenantCell& cell) const {
  const double arrival = cell.runtime->pending_arrival_time();
  // An idle fleet cannot re-evaluate before the next arrival is placed, so
  // the next draw is exactly that arrival's refresh — a much tighter bound
  // than the re-evaluation deadline when the fleet drains between bursts.
  if (cell.runtime->fleet_idle()) return arrival;
  return std::max(cell.runtime->now(),
                  std::min(arrival, cell.runtime->next_reeval_time()));
}

double ShardedSession::post_draw_bound(const TenantCell& cell,
                                       const SessionRuntime::PendingEvent& ev) const {
  if (ev.kind == RuntimeEventKind::MeasureRefresh) {
    // This draw serves the pending arrival; afterwards the earliest draw is
    // the *following* arrival's refresh (one look-ahead into the stream) or
    // a re-evaluation — possibly still at this instant, which the max
    // preserves as "may draw again now".
    const double arrival = cell.stream->peek_time();
    return std::max(ev.time_s,
                    std::min(arrival, cell.runtime->next_reeval_time()));
  }
  // ReevalTick at T: the deadline advances to T + period the moment the
  // re-evaluation runs, and the pending arrival's refresh is already queued
  // at a known instant >= T.
  return std::min(cell.runtime->pending_arrival_time(), ev.time_s + cell.period_s);
}

void ShardedSession::run_tenant(TenantCell& cell) {
  if (!cell.started) {
    // Phase 0: the initial sweep, with its oracle-ordered pre-drawn epoch.
    cell.has_grant = true;
    cell.granted = cell.start_epoch;
    cell.runtime->start(*cell.stream);
    CHOREO_ASSERT_MSG(!cell.has_grant, "start() must draw exactly one epoch");
    cell.started = true;
    cell.advertised = running_bound(cell);
    arbiter_->set_bound(cell.index, cell.advertised);
  }
  while (true) {
    if (cell.state == TenantCell::kAwaitGrant) {
      const std::optional<std::uint64_t> epoch = arbiter_->poll(cell.index);
      if (!epoch) return;  // still parked; the shard moves on
      cell.granted = *epoch;
      cell.has_grant = true;
      cell.state = TenantCell::kRunnable;
    }
    const std::optional<SessionRuntime::PendingEvent> next =
        cell.runtime->peek_event();
    if (!next) {
      cell.log = cell.runtime->finish();
      cell.stats = cell.runtime->stats();
      cell.state = TenantCell::kDone;
      arbiter_->mark_done(cell.index);
      return;
    }
    const bool draws = next->kind == RuntimeEventKind::MeasureRefresh ||
                       next->kind == RuntimeEventKind::ReevalTick;
    if (draws && !cell.has_grant) {
      const std::optional<std::uint64_t> epoch =
          arbiter_->request(cell.index, next->time_s, post_draw_bound(cell, *next));
      if (!epoch) {
        cell.state = TenantCell::kAwaitGrant;
        return;
      }
      cell.granted = *epoch;
      cell.has_grant = true;
    }
    cell.runtime->step();
    CHOREO_ASSERT_MSG(!cell.has_grant, "a non-draw step consumed no grant");
    const double bound = running_bound(cell);
    if (bound > cell.advertised) {
      cell.advertised = bound;
      arbiter_->set_bound(cell.index, bound);
    }
  }
}

bool ShardedSession::run_shard_pass(Shard& shard) {
  bool progressed = false;
  bool all_done = true;
  for (std::size_t index : shard.tenants) {
    TenantCell& cell = *cells_[index];
    if (cell.state == TenantCell::kDone) continue;
    const bool was_started = cell.started;
    const TenantCell::State before = cell.state;
    const std::uint64_t events_before = cell.started ? cell.runtime->stats().events_processed : 0;
    run_tenant(cell);
    if (cell.state != TenantCell::kDone) all_done = false;
    progressed |= !was_started || cell.state == TenantCell::kDone ||
                  before == TenantCell::kRunnable ||
                  (cell.started &&
                   cell.runtime->stats().events_processed != events_before);
  }
  if (all_done) shard.done.store(true, std::memory_order_release);
  return progressed;
}

MultiTenantLog ShardedSession::run() {
  CHOREO_REQUIRE_MSG(!ran_, "run() may be called once");
  ran_ = true;
  CHOREO_OBS_SPAN(run_span, opts_.obs, "sharded.run", "sharded");

  const std::size_t n = tenants_.size();
  const unsigned threads = std::max(1u, opts_.threads);
  const std::size_t shard_count =
      opts_.shards == 0 ? static_cast<std::size_t>(threads) : opts_.shards;
  CHOREO_REQUIRE(shard_count >= 1);
  run_stats_ = Stats{};
  run_stats_.shards = shard_count;
  run_stats_.threads = threads;

  arbiter_ = std::make_unique<EpochArbiter>(
      n, [this] { return cloud_.next_epoch(); });

  cells_.clear();
  cells_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto cell = std::make_unique<TenantCell>();
    cell->index = i;
    cell->period_s = tenants_[i].config.choreo.reevaluate_period_s;
    cell->stream = std::make_unique<PeekStream>(*tenants_[i].stream);
    RuntimeOptions options;
    options.record_events = opts_.record_events;
    options.record_outcomes = opts_.record_outcomes;
    options.tenant = static_cast<std::uint32_t>(i);
    options.epoch_source = [cell_ptr = cell.get()] {
      CHOREO_REQUIRE_MSG(cell_ptr->has_grant,
                         "epoch draw outside an arbiter grant");
      cell_ptr->has_grant = false;
      return cell_ptr->granted;
    };
    cell->runtime = std::make_unique<SessionRuntime>(
        cloud_, tenants_[i].vms, tenants_[i].config, std::move(options));
    cells_.push_back(std::move(cell));
  }
  // The oracle starts every runtime sequentially before its interleave
  // loop, drawing one epoch each in tenant order. Pre-drawing those values
  // here lets the initial sweeps themselves — the single most expensive
  // measurement phase of a session — run on all threads at once.
  for (std::size_t i = 0; i < n; ++i) cells_[i]->start_epoch = cloud_.next_epoch();

  shards_.clear();
  shards_.reserve(shard_count);
  for (std::size_t s = 0; s < shard_count; ++s) shards_.push_back(std::make_unique<Shard>());
  for (std::size_t i = 0; i < n; ++i) shards_[i % shard_count]->tenants.push_back(i);
  for (auto& shard : shards_) {
    if (shard->tenants.empty()) shard->done.store(true, std::memory_order_release);
  }

  std::atomic<std::uint64_t> passes{0};
  std::atomic<std::uint64_t> waits{0};
  const auto worker = [&](unsigned worker_id) {
    try {
      while (!arbiter_->all_done()) {
        if (arbiter_->aborted()) return;
        // Read the version before scanning: a grant that fires mid-scan
        // (from another worker, or from this one's own requests) makes the
        // post-scan version differ, so the rescan below cannot be lost.
        const std::uint64_t seen = arbiter_->version();
        bool progressed = false;
        for (std::size_t k = 0; k < shards_.size(); ++k) {
          Shard& shard = *shards_[(k + worker_id) % shards_.size()];
          if (shard.done.load(std::memory_order_acquire)) continue;
          bool expected = false;
          if (!shard.claimed.compare_exchange_strong(expected, true)) continue;
          const bool did = run_shard_pass(shard);
          shard.claimed.store(false);
          if (did) {
            progressed = true;
            passes.fetch_add(1, std::memory_order_relaxed);
          }
        }
        if (progressed || arbiter_->all_done()) continue;
        if (arbiter_->version() != seen) continue;  // grant fired mid-scan
        // Nothing runnable anywhere: on one thread that can only mean the
        // grant protocol wedged (a bug), so fail loudly instead of hanging;
        // with workers, park until another thread's grant frees a tenant.
        CHOREO_REQUIRE_MSG(threads > 1,
                           "sharded session stalled: no runnable tenant in a "
                           "single-threaded schedule");
        waits.fetch_add(1, std::memory_order_relaxed);
        arbiter_->wait_change(seen);
      }
    } catch (...) {
      arbiter_->abort();  // wake parked workers so run_workers can join
      throw;
    }
  };
  util::run_workers(threads, worker);

  run_stats_.epoch_grants = static_cast<std::uint64_t>(n) + arbiter_->grants();
  run_stats_.shard_passes = passes.load();
  run_stats_.idle_waits = waits.load();

  {
    // epoch_grants is deterministic; occupancy and waits are not, so their
    // names carry the `wall` exclusion token (see ShardedOptions::obs).
    obs::Counter grants = opts_.obs.counter("sharded.epoch_grants");
    obs::Counter shard_passes = opts_.obs.counter("sharded.wall_shard_passes");
    obs::Counter idle_waits = opts_.obs.counter("sharded.wall_idle_waits");
    CHOREO_OBS_ADD(grants, opts_.obs, run_stats_.epoch_grants);
    CHOREO_OBS_ADD(shard_passes, opts_.obs, run_stats_.shard_passes);
    CHOREO_OBS_ADD(idle_waits, opts_.obs, run_stats_.idle_waits);
    run_span.arg("tenants", static_cast<double>(n));
    run_span.arg("threads", static_cast<double>(threads));
    run_span.arg("shards", static_cast<double>(shard_count));
  }

  MultiTenantLog out;
  out.tenants.reserve(n);
  stats_.clear();
  for (auto& cell : cells_) {
    CHOREO_ASSERT(cell->state == TenantCell::kDone);
    out.tenants.push_back(std::move(cell->log));
    stats_.push_back(cell->stats);
  }
  cells_.clear();
  shards_.clear();
  arbiter_.reset();

  // Aggregate reduction — the same deterministic merge the oracle performs:
  // counters summed and outcomes concatenated in tenant order, events k-way
  // merged on (time, tenant) with app payloads re-based.
  std::vector<std::uint32_t> app_offset(out.tenants.size(), 0);
  std::uint32_t total_apps = 0;
  for (std::size_t i = 0; i < out.tenants.size(); ++i) {
    app_offset[i] = total_apps;
    total_apps += static_cast<std::uint32_t>(out.tenants[i].apps.size());
  }
  SessionLog& agg = out.aggregate;
  for (std::size_t i = 0; i < out.tenants.size(); ++i) {
    const SessionLog& log = out.tenants[i];
    agg.apps.insert(agg.apps.end(), log.apps.begin(), log.apps.end());
    agg.reevaluations += log.reevaluations;
    agg.reevaluations_adopted += log.reevaluations_adopted;
    agg.tasks_migrated += log.tasks_migrated;
    agg.rejected += log.rejected;
    agg.total_runtime_s += log.total_runtime_s;
    agg.measurement_wall_s += log.measurement_wall_s;
    agg.pairs_probed += log.pairs_probed;
    agg.pairs_volatile += log.pairs_volatile;
    agg.pairs_predictable += log.pairs_predictable;
    agg.pairs_unpredictable += log.pairs_unpredictable;
    agg.pairs_changepoint += log.pairs_changepoint;
    agg.pairs_predicted += log.pairs_predicted;
  }
  std::vector<std::size_t> cursor(out.tenants.size(), 0);
  while (true) {
    const std::size_t best =
        util::earliest_index(out.tenants.size(), [&](std::size_t i) {
          return cursor[i] < out.tenants[i].events.size()
                     ? out.tenants[i].events[cursor[i]].time_s
                     : std::numeric_limits<double>::infinity();
        });
    if (best == out.tenants.size()) break;
    SessionEvent ev = out.tenants[best].events[cursor[best]++];
    if (ev.app != SessionEvent::kNoApp) ev.app += app_offset[best];
    agg.events.push_back(ev);
  }
  return out;
}

}  // namespace choreo::core

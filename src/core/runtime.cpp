#include "core/runtime.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "place/rate_model.h"
#include "serve/batch.h"
#include "util/require.h"

namespace choreo::core {
namespace {

// Phase priorities for same-instant events, encoding the historical merge
// loop's within-iteration order: departures free capacity first, queued apps
// retry, then each arrival is measured and placed, and the §2.4
// re-evaluation runs after the arrivals of that instant. A departure whose
// estimated completion *equals* the instant it was scheduled at (an app with
// no network time) belongs to the *next* iteration of the old loop — it must
// run after this instant's arrivals and re-evaluation, hence the trailing
// priority.
constexpr std::uint32_t kPrioDeparture = 0;
constexpr std::uint32_t kPrioQueueRetry = 1;
constexpr std::uint32_t kPrioMeasureRefresh = 2;
constexpr std::uint32_t kPrioArrival = 3;
constexpr std::uint32_t kPrioReevalTick = 4;
constexpr std::uint32_t kPrioSameInstantDeparture = 5;

// The old loop's comparison slack for "due at this instant".
constexpr double kTimeEps = 1e-9;

// Earliest-first selection with ties to the lowest index — the one
// comparison both the multi-tenant execution interleave and the aggregate
// event merge must share, so the merged log's order is the order events
// actually happened in. `time_of(i)` returns +infinity for exhausted
// entries; returns `count` when everything is exhausted.
template <typename TimeOf>
std::size_t pick_earliest(std::size_t count, TimeOf&& time_of) {
  std::size_t best = count;
  double best_time = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < count; ++i) {
    const double t = time_of(i);
    if (t < best_time) {
      best_time = t;
      best = i;
    }
  }
  return best;
}

}  // namespace

const char* to_string(RuntimeEventKind kind) {
  switch (kind) {
    case RuntimeEventKind::Arrival:
      return "Arrival";
    case RuntimeEventKind::Departure:
      return "Departure";
    case RuntimeEventKind::QueueRetry:
      return "QueueRetry";
    case RuntimeEventKind::ReevalTick:
      return "ReevalTick";
    case RuntimeEventKind::MeasureRefresh:
      return "MeasureRefresh";
  }
  return "unknown";
}

SessionRuntime::SessionRuntime(cloud::Cloud& cloud, std::vector<cloud::VmId> vms,
                               ControllerConfig config, RuntimeOptions options)
    : cloud_(cloud),
      vms_(std::move(vms)),
      config_(std::move(config)),
      opts_(std::move(options)) {
  CHOREO_REQUIRE(vms_.size() >= 2);
  CHOREO_REQUIRE(config_.choreo.reevaluate_period_s > 0.0);
  // The session-level agent-plane opt-in is just ChoreoConfig plumbing:
  // every Choreo this runtime constructs measures through the agents.
  if (config_.agents.enabled) config_.choreo.agents = config_.agents;
  next_reeval_ = config_.choreo.reevaluate_period_s;
  obs_arrivals_ = config_.choreo.obs.counter("session.arrivals");
  obs_departures_ = config_.choreo.obs.counter("session.departures");
  obs_batch_placed_ = config_.choreo.obs.counter("session.batch_placed");
}

AppOutcome& SessionRuntime::outcome_of(AppRecord& rec) {
  if (opts_.record_outcomes) return log_.apps[rec.ordinal];
  return rec.outcome;
}

std::uint64_t SessionRuntime::next_epoch() {
  if (opts_.epoch_source) return opts_.epoch_source();
  return local_epoch_++;
}

void SessionRuntime::measure() {
  CHOREO_OBS_SPAN(span, config_.choreo.obs, "session.measure", "session");
  choreo_->measure_network(next_epoch());
  accumulate_measure(choreo_->last_measure());
  ++stats_.measure_cycles;
  span.sim(now_, choreo_->last_measure().wall_time_s);
  span.arg("pairs_probed",
           static_cast<double>(choreo_->last_measure().pairs_probed));
}

void SessionRuntime::accumulate_measure(const Choreo::MeasureReport& report) {
  log_.measurement_wall_s += report.wall_time_s;
  log_.pairs_probed += report.pairs_probed;
  log_.pairs_volatile += report.volatile_pairs;
  log_.pairs_predictable += report.predictable_pairs;
  log_.pairs_unpredictable += report.unpredictable_pairs;
  log_.pairs_changepoint += report.changepoint_pairs;
  log_.pairs_predicted += report.predicted_pairs;
}

void SessionRuntime::push_event(Event ev) {
  ev.seq = seq_++;
  queue_.push(ev);
  stats_.peak_queue = std::max(stats_.peak_queue, queue_.size());
}

void SessionRuntime::emit(const SessionEvent& ev) {
  if (opts_.record_events) log_.events.push_back(ev);
  if (opts_.on_event) opts_.on_event(ev);
}

void SessionRuntime::retire(AppRecord& rec) {
  // With outcome recording on, the log keeps everything and total_runtime_s
  // is summed at finish() in arrival order (bit-identical to the old loop);
  // with it off, this is the only place per-app results leave the runtime.
  if (!opts_.record_outcomes) {
    if (rec.outcome.finished_s >= 0.0) {
      streamed_runtime_s_ += rec.outcome.finished_s - rec.outcome.arrival_s;
    }
    if (opts_.on_outcome) opts_.on_outcome(rec.outcome);
  } else if (opts_.on_outcome) {
    opts_.on_outcome(log_.apps[rec.ordinal]);
  }
}

void SessionRuntime::schedule_departure(const InFlight& entry) {
  Event ev;
  ev.time_s = entry.est_finish_s;
  // An estimated completion at the current instant waits for the next
  // departure phase (see the priority table above).
  ev.prio = entry.est_finish_s <= now_ ? kPrioSameInstantDeparture : kPrioDeparture;
  ev.kind = RuntimeEventKind::Departure;
  ev.id = entry.handle;
  ev.gen = entry.gen;
  push_event(ev);
}

void SessionRuntime::schedule_tick() {
  ++tick_gen_;
  Event ev;
  ev.time_s = std::max(next_reeval_, now_);
  ev.prio = kPrioReevalTick;
  ev.kind = RuntimeEventKind::ReevalTick;
  ev.gen = tick_gen_;
  push_event(ev);
}

void SessionRuntime::schedule_retry(double time_s) {
  Event ev;
  ev.time_s = time_s;
  ev.prio = kPrioQueueRetry;
  ev.kind = RuntimeEventKind::QueueRetry;
  push_event(ev);
}

void SessionRuntime::pull_next_arrival() {
  CHOREO_ASSERT_MSG(!pending_, "only one look-ahead arrival at a time");
  std::optional<place::Application> app = stream_->next();
  if (!app) return;
  AppRecord rec;
  rec.ordinal = next_ordinal_++;
  rec.outcome.name = app->name;
  rec.outcome.arrival_s = app->arrival_s;
  rec.app = std::move(*app);
  if (opts_.record_outcomes) log_.apps.push_back(rec.outcome);

  // §2.4: re-measure (incrementally) before placing — the refresh is its own
  // typed event, sequenced immediately before the arrival it serves.
  Event measure_ev;
  measure_ev.time_s = rec.app.arrival_s;
  measure_ev.prio = kPrioMeasureRefresh;
  measure_ev.kind = RuntimeEventKind::MeasureRefresh;
  push_event(measure_ev);

  Event arrival_ev;
  arrival_ev.time_s = rec.app.arrival_s;
  arrival_ev.prio = kPrioArrival;
  arrival_ev.kind = RuntimeEventKind::Arrival;
  push_event(arrival_ev);

  pending_ = std::move(rec);
}

bool SessionRuntime::is_stale(const Event& ev) const {
  switch (ev.kind) {
    case RuntimeEventKind::Departure: {
      for (const InFlight& entry : in_flight_) {
        if (entry.handle == ev.id) return entry.gen != ev.gen;
      }
      return true;  // already departed
    }
    case RuntimeEventKind::ReevalTick:
      return ev.gen != tick_gen_ || in_flight_.empty();
    case RuntimeEventKind::QueueRetry:
      return waiting_.empty();
    case RuntimeEventKind::Arrival:
    case RuntimeEventKind::MeasureRefresh:
      return false;
  }
  return false;
}

void SessionRuntime::prune() {
  while (!queue_.empty() && is_stale(queue_.top())) {
    queue_.pop();
    ++stats_.stale_skipped;
  }
}

bool SessionRuntime::done() {
  CHOREO_REQUIRE_MSG(started_, "call start() first");
  prune();
  return queue_.empty();
}

double SessionRuntime::next_time() {
  CHOREO_REQUIRE_MSG(started_, "call start() first");
  prune();
  if (queue_.empty()) return std::numeric_limits<double>::infinity();
  return queue_.top().time_s;
}

std::optional<SessionRuntime::PendingEvent> SessionRuntime::peek_event() {
  CHOREO_REQUIRE_MSG(started_, "call start() first");
  prune();
  if (queue_.empty()) return std::nullopt;
  return PendingEvent{queue_.top().time_s, queue_.top().kind};
}

double SessionRuntime::pending_arrival_time() const {
  if (!pending_) return std::numeric_limits<double>::infinity();
  return pending_->app.arrival_s;
}

void SessionRuntime::start(workload::ArrivalStream& stream) {
  CHOREO_REQUIRE_MSG(!started_, "start() may be called once");
  started_ = true;
  stream_ = &stream;
  choreo_ = std::make_unique<Choreo>(cloud_, vms_, config_.choreo);
  measure();
  pull_next_arrival();
}

void SessionRuntime::admit(AppRecord rec, Choreo::AppHandle handle) {
  const place::Placement& p = choreo_->placement_of(handle);
  InFlight entry;
  entry.handle = handle;
  entry.est_finish_s =
      now_ + place::estimate_completion_s(rec.app, p, choreo_->view(),
                                          config_.choreo.rate_model);
  AppOutcome& outcome = outcome_of(rec);
  outcome.placed_s = now_;
  outcome.placement = p;
  SessionEvent placed;
  placed.time_s = now_;
  placed.kind = SessionEventKind::Placed;
  placed.app = rec.ordinal;
  placed.tenant = opts_.tenant;
  emit(placed);
  entry.rec = std::move(rec);
  in_flight_.push_back(std::move(entry));
  stats_.peak_in_flight = std::max(stats_.peak_in_flight, in_flight_.size());
  ++stats_.placements;
  schedule_departure(in_flight_.back());
  // The periodic review only has a next firing while something is running
  // (the old loop's `if (!running.empty())` guard on the reevaluation
  // deadline); re-arm it whenever the fleet transitions from idle.
  if (in_flight_.size() == 1) schedule_tick();
}

bool SessionRuntime::try_place(AppRecord& rec) {
  try {
    const Choreo::AppHandle handle = choreo_->place_application(rec.app);
    admit(std::move(rec), handle);
    return true;
  } catch (const place::PlacementError&) {
    return false;
  }
}

bool SessionRuntime::try_place_batch(std::size_t count) {
  CHOREO_ASSERT(count >= 2 && count <= waiting_.size());
  CHOREO_OBS_SPAN(span, config_.choreo.obs, "serve.batch", "serve");
  span.sim(now_, 0.0);
  span.arg("batch", static_cast<double>(count));
  std::vector<const place::Application*> apps;
  apps.reserve(count);
  for (std::size_t i = 0; i < count; ++i) apps.push_back(&waiting_[i].app);
  serve::BatchPlan plan;
  try {
    plan = serve::plan_batch(apps, choreo_->state(), config_.choreo.rate_model,
                             config_.batch);
  } catch (const place::PlacementError&) {
    return false;
  }
  // The joint placement already accounts for the batch's mutual contention
  // (the combined application was placed as one), so committing each slice
  // in FIFO order reproduces the joint commit: CPU and transfer bookkeeping
  // are additive, and combine()'s traffic matrix is block-diagonal.
  for (std::size_t i = 0; i < count; ++i) {
    AppRecord rec = std::move(waiting_.front());
    waiting_.pop_front();
    const Choreo::AppHandle handle =
        choreo_->adopt_placement(rec.app, plan.placements[i]);
    admit(std::move(rec), handle);
  }
  CHOREO_OBS_ADD(obs_batch_placed_, config_.choreo.obs, count);
  return true;
}

void SessionRuntime::handle_arrival() {
  CHOREO_ASSERT_MSG(pending_, "arrival event without a pending application");
  CHOREO_OBS_SPAN(span, config_.choreo.obs, "session.arrival", "session");
  span.sim(now_, 0.0);
  AppRecord rec = std::move(*pending_);
  pending_.reset();
  ++stats_.arrivals;
  CHOREO_OBS_INC(obs_arrivals_, config_.choreo.obs);

  SessionEvent arrival;
  arrival.time_s = now_;
  arrival.kind = SessionEventKind::Arrival;
  arrival.app = rec.ordinal;
  arrival.tenant = opts_.tenant;
  emit(arrival);

  if (!try_place(rec)) {
    if (config_.queue_when_full) {
      SessionEvent deferred;
      deferred.time_s = now_;
      deferred.kind = SessionEventKind::Deferred;
      deferred.app = rec.ordinal;
      deferred.tenant = opts_.tenant;
      emit(deferred);
      waiting_.push_back(std::move(rec));
      stats_.peak_waiting = std::max(stats_.peak_waiting, waiting_.size());
    } else {
      // Deterministic failure path: the arrival is rejected, logged, and
      // left unplaced — it never enters the queue and never blocks the
      // session.
      outcome_of(rec).rejected = true;
      ++log_.rejected;
      SessionEvent rejected;
      rejected.time_s = now_;
      rejected.kind = SessionEventKind::Rejected;
      rejected.app = rec.ordinal;
      rejected.tenant = opts_.tenant;
      emit(rejected);
      retire(rec);
    }
  }
  pull_next_arrival();
}

void SessionRuntime::handle_retry() {
  ++stats_.retries;
  if (!config_.batch.enabled || config_.batch.max_batch <= 1) {
    // The historical FIFO drain, kept verbatim: place the head, stop at the
    // first application that does not fit (head-of-line blocking preserves
    // arrival fairness).
    while (!waiting_.empty() && try_place(waiting_.front())) waiting_.pop_front();
    return;
  }
  // Batched drain: plan up to max_batch queued applications jointly; on
  // joint infeasibility step the batch size down one at a time to the plain
  // single-app attempt. Stepping (not halving) matters: joint feasibility is
  // not monotone in any coarser stride — k == 3 infeasible says nothing
  // about k == 2, and halving used to skip it outright. Head-of-line
  // blocking is preserved — the queue head is part of every attempted
  // batch, and the drain stops when even it alone does not fit.
  while (!waiting_.empty()) {
    std::size_t k = std::min(config_.batch.max_batch, waiting_.size());
    bool placed = false;
    while (k > 1) {
      stats_.batch_attempts.push_back(k);
      if (try_place_batch(k)) {
        placed = true;
        break;
      }
      --k;
    }
    if (!placed) {
      if (!try_place(waiting_.front())) break;
      waiting_.pop_front();
    }
  }
}

void SessionRuntime::handle_departure() {
  // Finish every app due at this instant, in placement order — exactly the
  // old loop's finish_due scan. Departure events of apps this drain retires
  // become stale and are pruned when they surface.
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    if (it->est_finish_s <= now_ + kTimeEps) {
      AppOutcome& outcome = outcome_of(it->rec);
      outcome.finished_s = it->est_finish_s;
      SessionEvent departure;
      departure.time_s = it->est_finish_s;
      departure.kind = SessionEventKind::Departure;
      departure.app = it->rec.ordinal;
      departure.tenant = opts_.tenant;
      emit(departure);
      choreo_->remove_application(it->handle);
      ++stats_.departures;
      CHOREO_OBS_INC(obs_departures_, config_.choreo.obs);
      retire(it->rec);
      it = in_flight_.erase(it);
    } else {
      ++it;
    }
  }
  // Freed capacity gives queued applications their FIFO chance.
  if (!waiting_.empty()) schedule_retry(now_);
}

void SessionRuntime::handle_reeval() {
  CHOREO_ASSERT_MSG(now_ + kTimeEps >= next_reeval_, "re-evaluation fired early");
  CHOREO_OBS_SPAN(span, config_.choreo.obs, "session.reeval", "session");
  const Choreo::ReevalReport report = choreo_->reevaluate(next_epoch());
  span.sim(now_, report.measurement.wall_time_s);
  span.arg("tasks_migrated", static_cast<double>(report.tasks_migrated));
  ++log_.reevaluations;
  ++stats_.reevaluations;
  ++stats_.measure_cycles;
  accumulate_measure(report.measurement);
  if (report.adopted) {
    ++log_.reevaluations_adopted;
    log_.tasks_migrated += report.tasks_migrated;
    // Placements changed: refresh estimates, recorded placements, and the
    // departure schedule (the old events are superseded by generation).
    for (InFlight& entry : in_flight_) {
      const place::Placement& p = choreo_->placement_of(entry.handle);
      outcome_of(entry.rec).placement = p;
      entry.est_finish_s =
          now_ + place::estimate_completion_s(entry.rec.app, p, choreo_->view(),
                                              config_.choreo.rate_model);
      ++entry.gen;
      schedule_departure(entry);
    }
  }
  SessionEvent reeval;
  reeval.time_s = now_;
  reeval.kind = SessionEventKind::Reevaluation;
  reeval.tenant = opts_.tenant;
  reeval.tasks_migrated = static_cast<std::uint32_t>(report.tasks_migrated);
  reeval.adopted = report.adopted;
  emit(reeval);
  next_reeval_ = now_ + config_.choreo.reevaluate_period_s;
  schedule_tick();
  // A migration can redistribute load so that a queued app now fits, but the
  // old loop only retried at its *next* iteration, after that iteration's
  // departures — schedule the retry at the next event's instant, in the
  // retry phase. When the next event is a departure (of either priority),
  // its drain schedules the retry itself; scheduling one here would let the
  // retry run before the departure freed its VMs, which the old loop never
  // did. A duplicate of an already-pending retry would be harmless but is
  // skipped the same way.
  if (report.adopted && !waiting_.empty()) {
    prune();
    CHOREO_ASSERT_MSG(!queue_.empty(), "re-evaluation with nothing scheduled");
    const RuntimeEventKind next_kind = queue_.top().kind;
    if (next_kind != RuntimeEventKind::Departure &&
        next_kind != RuntimeEventKind::QueueRetry) {
      schedule_retry(queue_.top().time_s);
    }
  }
}

void SessionRuntime::step() {
  CHOREO_REQUIRE_MSG(started_, "call start() first");
  prune();
  CHOREO_REQUIRE_MSG(!queue_.empty(), "step() on a finished session");
  const Event ev = queue_.top();
  queue_.pop();
  now_ = std::max(now_, ev.time_s);
  ++stats_.events_processed;
  switch (ev.kind) {
    case RuntimeEventKind::MeasureRefresh:
      measure();
      break;
    case RuntimeEventKind::Arrival:
      handle_arrival();
      break;
    case RuntimeEventKind::QueueRetry:
      handle_retry();
      break;
    case RuntimeEventKind::Departure:
      handle_departure();
      break;
    case RuntimeEventKind::ReevalTick:
      handle_reeval();
      break;
  }
}

SessionLog SessionRuntime::finish() {
  CHOREO_REQUIRE_MSG(started_ && !finished_, "finish() once, after start()");
  CHOREO_REQUIRE_MSG(done(), "finish() before the session drained");
  CHOREO_ASSERT_MSG(waiting_.empty() && !pending_,
                    "waiting applications can never be placed");
  finished_ = true;
  if (opts_.record_outcomes) {
    for (const AppOutcome& a : log_.apps) {
      if (a.finished_s >= 0.0) log_.total_runtime_s += a.finished_s - a.arrival_s;
    }
  } else {
    log_.total_runtime_s = streamed_runtime_s_;
  }
  return std::move(log_);
}

SessionLog SessionRuntime::run(workload::ArrivalStream& stream) {
  start(stream);
  while (!done()) step();
  return finish();
}

MultiTenantSession::MultiTenantSession(cloud::Cloud& cloud,
                                       std::vector<TenantSpec> tenants,
                                       MultiTenantOptions options)
    : cloud_(cloud), tenants_(std::move(tenants)), opts_(options) {
  CHOREO_REQUIRE(!tenants_.empty());
  std::unordered_set<cloud::VmId> seen;
  for (const TenantSpec& t : tenants_) {
    CHOREO_REQUIRE_MSG(t.stream != nullptr, "tenant without a workload stream");
    CHOREO_REQUIRE(t.vms.size() >= 2);
    for (cloud::VmId vm : t.vms) {
      CHOREO_REQUIRE_MSG(seen.insert(vm).second,
                         "tenant VM slices must be disjoint");
    }
  }
}

MultiTenantLog MultiTenantSession::run() {
  CHOREO_REQUIRE_MSG(!ran_, "run() may be called once");
  ran_ = true;

  std::vector<std::unique_ptr<SessionRuntime>> runtimes;
  runtimes.reserve(tenants_.size());
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    RuntimeOptions options;
    options.record_events = opts_.record_events;
    options.record_outcomes = opts_.record_outcomes;
    options.tenant = static_cast<std::uint32_t>(i);
    // The epoch plumbing that couples tenants: every measurement cycle draws
    // from the shared cloud's counter, so each cycle observes the cloud's
    // background realization as of its position in the global event order.
    options.epoch_source = [this] { return cloud_.next_epoch(); };
    runtimes.push_back(std::make_unique<SessionRuntime>(
        cloud_, tenants_[i].vms, tenants_[i].config, std::move(options)));
  }
  for (std::size_t i = 0; i < tenants_.size(); ++i) {
    runtimes[i]->start(*tenants_[i].stream);
  }

  // The shared clock: always advance the tenant with the earliest live
  // event; ties break by tenant index. Deterministic for a fixed spec.
  while (true) {
    const std::size_t best = pick_earliest(runtimes.size(), [&](std::size_t i) {
      return runtimes[i]->next_time();  // +inf once done
    });
    if (best == runtimes.size()) break;
    runtimes[best]->step();
  }

  MultiTenantLog out;
  out.tenants.reserve(runtimes.size());
  stats_.clear();
  for (auto& rt : runtimes) {
    out.tenants.push_back(rt->finish());
    stats_.push_back(rt->stats());
  }

  // Aggregate: counters summed, outcomes concatenated, events k-way merged
  // on (time, tenant) with app payloads re-based onto the concatenation.
  std::vector<std::uint32_t> app_offset(out.tenants.size(), 0);
  std::uint32_t total_apps = 0;
  for (std::size_t i = 0; i < out.tenants.size(); ++i) {
    app_offset[i] = total_apps;
    total_apps += static_cast<std::uint32_t>(out.tenants[i].apps.size());
  }
  SessionLog& agg = out.aggregate;
  for (std::size_t i = 0; i < out.tenants.size(); ++i) {
    const SessionLog& log = out.tenants[i];
    agg.apps.insert(agg.apps.end(), log.apps.begin(), log.apps.end());
    agg.reevaluations += log.reevaluations;
    agg.reevaluations_adopted += log.reevaluations_adopted;
    agg.tasks_migrated += log.tasks_migrated;
    agg.rejected += log.rejected;
    agg.total_runtime_s += log.total_runtime_s;
    agg.measurement_wall_s += log.measurement_wall_s;
    agg.pairs_probed += log.pairs_probed;
    agg.pairs_volatile += log.pairs_volatile;
    agg.pairs_predictable += log.pairs_predictable;
    agg.pairs_unpredictable += log.pairs_unpredictable;
    agg.pairs_changepoint += log.pairs_changepoint;
    agg.pairs_predicted += log.pairs_predicted;
  }
  std::vector<std::size_t> cursor(out.tenants.size(), 0);
  while (true) {
    const std::size_t best = pick_earliest(out.tenants.size(), [&](std::size_t i) {
      return cursor[i] < out.tenants[i].events.size()
                 ? out.tenants[i].events[cursor[i]].time_s
                 : std::numeric_limits<double>::infinity();
    });
    if (best == out.tenants.size()) break;
    SessionEvent ev = out.tenants[best].events[cursor[best]++];
    if (ev.app != SessionEvent::kNoApp) ev.app += app_offset[best];
    agg.events.push_back(ev);
  }
  return out;
}

}  // namespace choreo::core
